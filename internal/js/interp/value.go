package interp

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/printer"
)

// Value is a JavaScript runtime value. The concrete types are:
//
//	Undefined  — the undefined value
//	Null       — the null value
//	bool       — booleans
//	float64    — numbers
//	string     — strings
//	*Object    — everything else (objects, arrays, functions, ...)
type Value interface{}

// Undefined is the JavaScript undefined value.
type Undefined struct{}

// Null is the JavaScript null value.
type Null struct{}

var (
	undef Value = Undefined{}
	null  Value = Null{}
)

// propEntry is one property slot: either a data property or an accessor.
type propEntry struct {
	value  Value
	getter *Object // accessor get function, nil for data properties
	setter *Object // accessor set function
}

// Object is the uniform heap value: plain objects, arrays, functions,
// regexps, errors, maps, promises, and the sandbox's host objects all share
// this representation, discriminated by class.
type Object struct {
	class  string // "Object", "Array", "Function", "RegExp", "Error", "Map", "Promise", "Arguments", "ArrayIterator", "Date", "global"
	props  map[string]*propEntry
	keys   []string // property insertion order
	proto  *Object
	frozen bool // Object.freeze: writes are silently ignored (sloppy mode)

	// Array / Arguments element storage.
	elems []Value

	// Function data: exactly one of fn (user function) or native is set.
	fn     *funcInfo
	native nativeFunc
	ctor   nativeCtor // construction behavior for native constructors
	name   string     // function name for rendering

	// RegExp data.
	regex *jsRegexp

	// Map data.
	mapKeys []Value
	mapVals []Value

	// Promise data.
	pstate     int // 0 pending, 1 fulfilled, 2 rejected
	pvalue     Value
	preactions []promiseReaction
}

type nativeFunc func(it *Interp, this Value, args []Value) Value

type nativeCtor func(it *Interp, args []Value) *Object

// funcInfo is the compiled form of a user-defined function.
type funcInfo struct {
	params  []ast.Node
	body    ast.Node // *ast.BlockStatement, or an expression for arrows
	env     *env
	isArrow bool
	isExpr  bool // arrow with expression body
	node    ast.Node
	source  string // lazily rendered source text for Function.prototype.toString

	// classFields holds instance field initializers when the function is a
	// class constructor.
	classFields []*ast.PropertyDefinition

	// superCtor is the parent class constructor for derived-class
	// constructors; implicitSuper marks a synthesized default constructor
	// that must forward its arguments to super.
	superCtor     *Object
	implicitSuper bool
}

type promiseReaction struct {
	onFulfilled *Object // may be nil (pass-through)
	onRejected  *Object
	next        *Object // the chained promise to settle
}

// IsFunction reports whether the object is callable.
func (o *Object) IsFunction() bool { return o != nil && (o.fn != nil || o.native != nil) }

// newObject allocates a plain object with the given class and prototype.
func newObject(class string, proto *Object) *Object {
	return &Object{class: class, props: make(map[string]*propEntry, 4), proto: proto}
}

// setProp defines or overwrites a data property, tracking insertion order.
func (o *Object) setProp(name string, v Value) {
	if e, ok := o.props[name]; ok {
		if e.setter != nil || e.getter != nil {
			e.value = v // overwritten accessors degrade to data; callers use setMember for full semantics
			e.getter, e.setter = nil, nil
			return
		}
		e.value = v
		return
	}
	o.props[name] = &propEntry{value: v}
	o.keys = append(o.keys, name)
}

// setAccessor defines a getter/setter pair (either may be nil to keep the
// previous one).
func (o *Object) setAccessor(name string, getter, setter *Object) {
	e, ok := o.props[name]
	if !ok {
		e = &propEntry{}
		o.props[name] = e
		o.keys = append(o.keys, name)
	}
	if getter != nil {
		e.getter = getter
	}
	if setter != nil {
		e.setter = setter
	}
	e.value = nil
}

// getOwn looks up an own property entry.
func (o *Object) getOwn(name string) (*propEntry, bool) {
	e, ok := o.props[name]
	return e, ok
}

// deleteProp removes an own property; it reports whether it existed.
func (o *Object) deleteProp(name string) bool {
	if _, ok := o.props[name]; !ok {
		return false
	}
	delete(o.props, name)
	for i, k := range o.keys {
		if k == name {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Type conversions (ECMA ToBoolean / ToNumber / ToString / ToPrimitive)
// ---------------------------------------------------------------------------

func toBoolean(v Value) bool {
	switch x := v.(type) {
	case Undefined, Null:
		return false
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	default:
		return true
	}
}

func (it *Interp) toNumber(v Value) float64 {
	switch x := v.(type) {
	case Undefined:
		return math.NaN()
	case Null:
		return 0
	case bool:
		if x {
			return 1
		}
		return 0
	case float64:
		return x
	case string:
		return stringToNumber(x)
	case *Object:
		return it.toNumber(it.toPrimitive(x, "number"))
	}
	return math.NaN()
}

func stringToNumber(s string) float64 {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0
	}
	if strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X") {
		n, err := strconv.ParseUint(t[2:], 16, 64)
		if err != nil {
			return math.NaN()
		}
		return float64(n)
	}
	if t == "Infinity" || t == "+Infinity" {
		return math.Inf(1)
	}
	if t == "-Infinity" {
		return math.Inf(-1)
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

func (it *Interp) toString(v Value) string {
	switch x := v.(type) {
	case Undefined:
		return "undefined"
	case Null:
		return "null"
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		return jsNumberString(x)
	case string:
		return x
	case *Object:
		return it.toString(it.toPrimitive(x, "string"))
	}
	return "undefined"
}

// toPrimitive converts an object to a primitive. The sandbox implements the
// default valueOf of every builtin as "no primitive", so both hints reduce to
// the object's string form, matching the coercions the transforms rely on
// ([]+[] === "", +[] === 0, "[object Object]", function source text, ...).
func (it *Interp) toPrimitive(o *Object, hint string) Value {
	if o == nil {
		return undef
	}
	// User-defined or builtin toString/valueOf take precedence when callable.
	order := []string{"valueOf", "toString"}
	if hint == "string" {
		order = []string{"toString", "valueOf"}
	}
	for _, name := range order {
		m := it.getMember(Value(o), name)
		fn, ok := m.(*Object)
		if !ok || !fn.IsFunction() {
			continue
		}
		r := it.callFunction(fn, Value(o), nil)
		if _, isObj := r.(*Object); !isObj {
			return r
		}
	}
	return it.objectDefaultString(o)
}

// objectDefaultString is the built-in string form per class.
func (it *Interp) objectDefaultString(o *Object) string {
	switch o.class {
	case "Array", "Arguments":
		parts := make([]string, len(o.elems))
		for i, e := range o.elems {
			switch e.(type) {
			case Undefined, Null, nil:
				parts[i] = ""
			default:
				parts[i] = it.toString(e)
			}
		}
		return strings.Join(parts, ",")
	case "Function":
		return it.functionSource(o)
	case "RegExp":
		return "/" + o.regex.source + "/" + o.regex.flags
	case "Error":
		name := "Error"
		if e, ok := o.getOwn("name"); ok {
			name = it.toString(e.value)
		}
		msg := ""
		if e, ok := o.getOwn("message"); ok {
			msg = it.toString(e.value)
		}
		if msg == "" {
			return name
		}
		return name + ": " + msg
	case "ArrayIterator":
		return "[object Array Iterator]"
	case "Map":
		return "[object Map]"
	case "Date":
		return "[sandbox Date]"
	default:
		return "[object Object]"
	}
}

// functionSource renders the source text of a function, used by
// Function.prototype.toString (the self-defending guard tests it against a
// formatting-sensitive regular expression).
func (it *Interp) functionSource(o *Object) string {
	if o.fn != nil {
		if o.fn.source == "" && o.fn.node != nil {
			o.fn.source = printer.Compact(o.fn.node)
			o.fn.source = strings.TrimSuffix(o.fn.source, ";")
		}
		if o.fn.source != "" {
			return o.fn.source
		}
		return "function () {}"
	}
	name := o.name
	return "function " + name + "() { [native code] }"
}

// ---------------------------------------------------------------------------
// Number formatting (ECMA Number::toString, base 10)
// ---------------------------------------------------------------------------

// jsNumberString formats a float the way JavaScript's String(number) does.
func jsNumberString(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if f == 0 {
		return "0" // covers -0
	}
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	neg := ""
	if f < 0 {
		neg = "-"
		f = -f
	}
	// Shortest round-trip digits and decimal exponent.
	mant := strconv.FormatFloat(f, 'e', -1, 64)
	ePos := strings.IndexByte(mant, 'e')
	digits := strings.Replace(mant[:ePos], ".", "", 1)
	exp10, _ := strconv.Atoi(mant[ePos+1:])
	n := exp10 + 1 // position of the decimal point relative to digits
	k := len(digits)
	switch {
	case k <= n && n <= 21:
		return neg + digits + strings.Repeat("0", n-k)
	case 0 < n && n <= 21:
		return neg + digits[:n] + "." + digits[n:]
	case -6 < n && n <= 0:
		return neg + "0." + strings.Repeat("0", -n) + digits
	default:
		e := "+" + strconv.Itoa(n-1)
		if n-1 < 0 {
			e = strconv.Itoa(n - 1)
		}
		if k == 1 {
			return neg + digits + "e" + e
		}
		return neg + digits[:1] + "." + digits[1:] + "e" + e
	}
}

// numberToStringRadix implements Number.prototype.toString(radix) for the
// integer values the transforms produce ((35).toString(36), packer keys).
func numberToStringRadix(f float64, radix int) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if radix == 10 {
		return jsNumberString(f)
	}
	neg := ""
	if f < 0 {
		neg = "-"
		f = -f
	}
	i := math.Trunc(f)
	s := strconv.FormatInt(int64(i), radix)
	frac := f - i
	if frac > 0 {
		// A short fractional expansion is enough for the sandbox.
		digits := "0123456789abcdefghijklmnopqrstuvwxyz"
		var sb strings.Builder
		sb.WriteString(s)
		sb.WriteByte('.')
		for n := 0; n < 20 && frac > 0; n++ {
			frac *= float64(radix)
			d := int(frac)
			sb.WriteByte(digits[d])
			frac -= float64(d)
		}
		s = sb.String()
	}
	return neg + s
}

// toInt32 is the ECMA ToInt32 conversion used by the bitwise operators.
func toInt32(f float64) int32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(uint32(int64(math.Trunc(f))))
}

// toUint32 is ECMA ToUint32 (for >>> and array index handling).
func toUint32(f float64) uint32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return uint32(int64(math.Trunc(f)))
}

// ---------------------------------------------------------------------------
// Equality and comparison
// ---------------------------------------------------------------------------

func strictEquals(a, b Value) bool {
	switch x := a.(type) {
	case Undefined:
		_, ok := b.(Undefined)
		return ok
	case Null:
		_, ok := b.(Null)
		return ok
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		return ok && x == y // NaN != NaN via float comparison
	case string:
		y, ok := b.(string)
		return ok && x == y
	case *Object:
		y, ok := b.(*Object)
		return ok && x == y
	}
	return false
}

// looseEquals implements the == algorithm.
func (it *Interp) looseEquals(a, b Value) bool {
	switch x := a.(type) {
	case Undefined, Null:
		switch b.(type) {
		case Undefined, Null:
			return true
		}
		return false
	case bool:
		return it.looseEquals(boolToNum(x), b)
	case float64:
		switch y := b.(type) {
		case float64:
			return x == y
		case string:
			return x == stringToNumber(y)
		case bool:
			return x == it.toNumber(y)
		case *Object:
			return it.looseEquals(a, it.toPrimitive(y, "default"))
		}
		return false
	case string:
		switch y := b.(type) {
		case string:
			return x == y
		case float64:
			return stringToNumber(x) == y
		case bool:
			return stringToNumber(x) == it.toNumber(y)
		case *Object:
			return it.looseEquals(a, it.toPrimitive(y, "default"))
		}
		return false
	case *Object:
		switch b.(type) {
		case *Object:
			return a == b
		case Undefined, Null:
			return false
		default:
			return it.looseEquals(it.toPrimitive(x, "default"), b)
		}
	}
	return false
}

func boolToNum(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// lessThan implements the abstract relational comparison; undefined result
// (NaN operand) is reported via ok=false.
func (it *Interp) lessThan(a, b Value) (res bool, ok bool) {
	pa := a
	pb := b
	if o, isObj := a.(*Object); isObj {
		pa = it.toPrimitive(o, "number")
	}
	if o, isObj := b.(*Object); isObj {
		pb = it.toPrimitive(o, "number")
	}
	sa, aIsStr := pa.(string)
	sb, bIsStr := pb.(string)
	if aIsStr && bIsStr {
		return sa < sb, true
	}
	na, nb := it.toNumber(pa), it.toNumber(pb)
	if math.IsNaN(na) || math.IsNaN(nb) {
		return false, false
	}
	return na < nb, true
}

// typeOf implements the typeof operator.
func typeOf(v Value) string {
	switch x := v.(type) {
	case Undefined:
		return "undefined"
	case Null:
		return "object"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case *Object:
		if x.IsFunction() {
			return "function"
		}
		return "object"
	}
	return "undefined"
}

// ---------------------------------------------------------------------------
// Console rendering
// ---------------------------------------------------------------------------

// renderTop renders one console argument the way the oracle compares it:
// top-level strings print raw, everything else through renderValue.
func (it *Interp) renderTop(v Value) string {
	if s, ok := v.(string); ok {
		return s
	}
	return it.renderValue(v, make(map[*Object]bool), 0)
}

func (it *Interp) renderValue(v Value, seen map[*Object]bool, depth int) string {
	switch x := v.(type) {
	case Undefined:
		return "undefined"
	case Null:
		return "null"
	case bool, float64:
		return it.toString(v)
	case string:
		return singleQuote(x)
	case *Object:
		if seen[x] {
			return "[Circular]"
		}
		if depth > 4 {
			return "[...]"
		}
		seen[x] = true
		defer delete(seen, x)
		switch x.class {
		case "Array", "Arguments":
			parts := make([]string, len(x.elems))
			for i, e := range x.elems {
				if e == nil {
					e = undef
				}
				parts[i] = it.renderValue(e, seen, depth+1)
			}
			return "[ " + strings.Join(parts, ", ") + " ]"
		case "Function":
			// Deliberately name-blind: renaming transforms change function
			// names without changing semantics, and console output is part of
			// the oracle's observable surface.
			return "[Function]"
		case "Error":
			return it.objectDefaultString(x)
		case "RegExp":
			return it.objectDefaultString(x)
		case "Map":
			return "Map(" + strconv.Itoa(len(x.mapKeys)) + ")"
		case "Promise":
			return "Promise"
		default:
			parts := make([]string, 0, len(x.keys))
			for _, k := range x.keys {
				e := x.props[k]
				val := e.value
				if e.getter != nil {
					val = it.callFunction(e.getter, Value(x), nil)
				}
				parts = append(parts, renderKey(k)+": "+it.renderValue(val, seen, depth+1))
			}
			if len(parts) == 0 {
				return "{}"
			}
			return "{ " + strings.Join(parts, ", ") + " }"
		}
	}
	return "undefined"
}

// singleQuote renders a string the way Node's console does inside objects and
// arrays: single quotes, escaping backslash, quote, and control characters.
func singleQuote(s string) string {
	var b strings.Builder
	b.WriteByte('\'')
	for _, r := range s {
		switch r {
		case '\'':
			b.WriteString(`\'`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('\'')
	return b.String()
}

func renderKey(k string) string {
	if k == "" {
		return `""`
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		ok := c == '_' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return printer.QuoteString(k)
		}
	}
	return k
}

// sortedKeys returns the object's own keys sorted (used only by tests).
func (o *Object) sortedKeys() []string {
	out := append([]string(nil), o.keys...)
	sort.Strings(out)
	return out
}
