package interp

import (
	"math"
	"strconv"
	"strings"
)

// setupStringBuiltins installs String.prototype and the String constructor.
// String values are Go strings; indexing operates on runes, which matches
// UTF-16 code units for the BMP text the corpus and transforms produce. The
// oracle compares interpreter output against interpreter output, so internal
// consistency — not engine-perfect astral-plane handling — is what matters.
func (it *Interp) setupStringBuiltins() {
	p := it.protos.stringProto

	def := func(name string, arity int, fn func(it *Interp, s string, args []Value) Value) {
		p.setProp(name, Value(it.makeNative(name, arity, func(it *Interp, this Value, args []Value) Value {
			return fn(it, it.toString(this), args)
		})))
	}

	def("charAt", 1, func(it *Interp, s string, args []Value) Value {
		i := int(it.toNumber(arg(args, 0)))
		rs := []rune(s)
		if i < 0 || i >= len(rs) {
			return ""
		}
		return string(rs[i])
	})
	def("charCodeAt", 1, func(it *Interp, s string, args []Value) Value {
		i := int(it.toNumber(arg(args, 0)))
		rs := []rune(s)
		if i < 0 || i >= len(rs) {
			return math.NaN()
		}
		return float64(rs[i])
	})
	def("indexOf", 1, func(it *Interp, s string, args []Value) Value {
		idx := strings.Index(s, it.toString(arg(args, 0)))
		if idx < 0 {
			return float64(-1)
		}
		return float64(len([]rune(s[:idx])))
	})
	def("lastIndexOf", 1, func(it *Interp, s string, args []Value) Value {
		idx := strings.LastIndex(s, it.toString(arg(args, 0)))
		if idx < 0 {
			return float64(-1)
		}
		return float64(len([]rune(s[:idx])))
	})
	def("includes", 1, func(it *Interp, s string, args []Value) Value {
		return strings.Contains(s, it.toString(arg(args, 0)))
	})
	def("startsWith", 1, func(it *Interp, s string, args []Value) Value {
		return strings.HasPrefix(s, it.toString(arg(args, 0)))
	})
	def("endsWith", 1, func(it *Interp, s string, args []Value) Value {
		return strings.HasSuffix(s, it.toString(arg(args, 0)))
	})
	def("slice", 2, func(it *Interp, s string, args []Value) Value {
		rs := []rune(s)
		start, end := sliceRange(len(rs), args, it)
		return string(rs[start:end])
	})
	def("substring", 2, func(it *Interp, s string, args []Value) Value {
		rs := []rune(s)
		a := clampIndex(int(it.toNumber(arg(args, 0))), len(rs))
		b := len(rs)
		if _, isU := arg(args, 1).(Undefined); !isU {
			b = clampIndex(int(it.toNumber(arg(args, 1))), len(rs))
		}
		if a > b {
			a, b = b, a
		}
		return string(rs[a:b])
	})
	def("substr", 2, func(it *Interp, s string, args []Value) Value {
		rs := []rune(s)
		a := int(it.toNumber(arg(args, 0)))
		if a < 0 {
			a = len(rs) + a
			if a < 0 {
				a = 0
			}
		}
		if a > len(rs) {
			return ""
		}
		n := len(rs) - a
		if _, isU := arg(args, 1).(Undefined); !isU {
			n = int(it.toNumber(arg(args, 1)))
		}
		if n < 0 {
			n = 0
		}
		if a+n > len(rs) {
			n = len(rs) - a
		}
		return string(rs[a : a+n])
	})
	def("toUpperCase", 0, func(it *Interp, s string, args []Value) Value {
		return strings.ToUpper(s)
	})
	def("toLowerCase", 0, func(it *Interp, s string, args []Value) Value {
		return strings.ToLower(s)
	})
	def("trim", 0, func(it *Interp, s string, args []Value) Value {
		return strings.Trim(s, " \t\n\r\v\f ")
	})
	def("trimStart", 0, func(it *Interp, s string, args []Value) Value {
		return strings.TrimLeft(s, " \t\n\r\v\f\u00a0")
	})
	def("trimEnd", 0, func(it *Interp, s string, args []Value) Value {
		return strings.TrimRight(s, " \t\n\r\v\f\u00a0")
	})
	def("at", 1, func(it *Interp, s string, args []Value) Value {
		r := []rune(s)
		i := int(it.toNumber(arg(args, 0)))
		if i < 0 {
			i += len(r)
		}
		if i < 0 || i >= len(r) {
			return undef
		}
		return string(r[i])
	})
	def("codePointAt", 1, func(it *Interp, s string, args []Value) Value {
		r := []rune(s)
		i := int(it.toNumber(arg(args, 0)))
		if i < 0 || i >= len(r) {
			return undef
		}
		return float64(r[i])
	})
	def("localeCompare", 1, func(it *Interp, s string, args []Value) Value {
		o := it.toString(arg(args, 0))
		switch {
		case s < o:
			return float64(-1)
		case s > o:
			return float64(1)
		}
		return float64(0)
	})
	def("search", 1, func(it *Interp, s string, args []Value) Value {
		re := it.compileRegexp(it.regexpFromArgs(args).regex)
		if loc := re.FindStringIndex(s); loc != nil {
			return float64(len([]rune(s[:loc[0]])))
		}
		return float64(-1)
	})
	def("repeat", 1, func(it *Interp, s string, args []Value) Value {
		n := int(it.toNumber(arg(args, 0)))
		if n < 0 {
			it.throwError("RangeError", "invalid count value")
		}
		it.charge(n * len(s))
		return strings.Repeat(s, n)
	})
	def("padStart", 2, func(it *Interp, s string, args []Value) Value {
		return padString(it, s, args, true)
	})
	def("padEnd", 2, func(it *Interp, s string, args []Value) Value {
		return padString(it, s, args, false)
	})
	def("concat", 1, func(it *Interp, s string, args []Value) Value {
		for _, a := range args {
			s += it.toString(a)
		}
		it.charge(len(s))
		return s
	})
	def("split", 2, func(it *Interp, s string, args []Value) Value {
		return it.stringSplit(s, args)
	})
	def("replace", 2, func(it *Interp, s string, args []Value) Value {
		return it.stringReplace(s, arg(args, 0), arg(args, 1), false)
	})
	def("replaceAll", 2, func(it *Interp, s string, args []Value) Value {
		return it.stringReplace(s, arg(args, 0), arg(args, 1), true)
	})
	def("match", 1, func(it *Interp, s string, args []Value) Value {
		return it.stringMatch(s, arg(args, 0))
	})
	def("toString", 0, func(it *Interp, s string, args []Value) Value { return s })
	def("valueOf", 0, func(it *Interp, s string, args []Value) Value { return s })

	ctor := it.makeNative("String", 1, func(it *Interp, this Value, args []Value) Value {
		if len(args) == 0 {
			return ""
		}
		return it.toString(args[0])
	})
	ctor.setProp("prototype", Value(p))
	ctor.setProp("fromCharCode", Value(it.makeNative("fromCharCode", 1, func(it *Interp, this Value, args []Value) Value {
		var sb strings.Builder
		for _, a := range args {
			sb.WriteRune(rune(uint16(int64(it.toNumber(a)))))
		}
		it.charge(sb.Len())
		return sb.String()
	})))
	p.setProp("constructor", Value(ctor))
	it.protos.stringCtor = ctor
	it.defineGlobal("String", Value(ctor))
}

func sliceRange(n int, args []Value, it *Interp) (int, int) {
	start := 0
	if _, isU := arg(args, 0).(Undefined); !isU {
		start = int(it.toNumber(args[0]))
	}
	end := n
	if _, isU := arg(args, 1).(Undefined); !isU {
		end = int(it.toNumber(args[1]))
	}
	if start < 0 {
		start += n
	}
	if end < 0 {
		end += n
	}
	start = clampIndex(start, n)
	end = clampIndex(end, n)
	if start > end {
		return 0, 0
	}
	return start, end
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

func padString(it *Interp, s string, args []Value, start bool) Value {
	target := int(it.toNumber(arg(args, 0)))
	pad := " "
	if _, isU := arg(args, 1).(Undefined); !isU {
		pad = it.toString(args[1])
	}
	rs := []rune(s)
	if target <= len(rs) || pad == "" {
		return s
	}
	it.charge(target)
	var fill []rune
	pr := []rune(pad)
	for len(fill) < target-len(rs) {
		fill = append(fill, pr...)
	}
	fill = fill[:target-len(rs)]
	if start {
		return string(fill) + s
	}
	return s + string(fill)
}

func (it *Interp) stringSplit(s string, args []Value) Value {
	arr := newObject("Array", it.protos.arrayProto)
	sep := arg(args, 0)
	limit := -1
	if _, isU := arg(args, 1).(Undefined); !isU {
		limit = int(it.toNumber(args[1]))
	}
	var parts []string
	switch sp := sep.(type) {
	case Undefined:
		parts = []string{s}
	case *Object:
		if sp.class == "RegExp" {
			re := it.compileRegexp(sp.regex)
			parts = re.Split(s, -1)
		} else {
			parts = splitByString(s, it.toString(sep))
		}
	default:
		parts = splitByString(s, it.toString(sep))
	}
	for i, part := range parts {
		if limit >= 0 && i >= limit {
			break
		}
		arr.elems = append(arr.elems, part)
	}
	it.charge(len(arr.elems) + 1)
	return Value(arr)
}

func splitByString(s, sep string) []string {
	if sep == "" {
		rs := []rune(s)
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = string(r)
		}
		return out
	}
	return strings.Split(s, sep)
}

// setupNumberBuiltins installs Number.prototype, the Number constructor, and
// Boolean.
func (it *Interp) setupNumberBuiltins() {
	p := it.protos.numberProto
	p.setProp("toString", Value(it.makeNative("toString", 1, func(it *Interp, this Value, args []Value) Value {
		n := it.toNumber(this)
		radix := 10
		if _, isU := arg(args, 0).(Undefined); !isU {
			radix = int(it.toNumber(args[0]))
		}
		if radix < 2 || radix > 36 {
			it.throwError("RangeError", "radix must be between 2 and 36")
		}
		return numberToStringRadix(n, radix)
	})))
	p.setProp("toFixed", Value(it.makeNative("toFixed", 1, func(it *Interp, this Value, args []Value) Value {
		digits := int(it.toNumber(arg(args, 0)))
		if digits < 0 || digits > 100 {
			it.throwError("RangeError", "digits out of range")
		}
		return strconv.FormatFloat(it.toNumber(this), 'f', digits, 64)
	})))
	p.setProp("valueOf", Value(it.makeNative("valueOf", 0, func(it *Interp, this Value, args []Value) Value {
		return it.toNumber(this)
	})))

	ctor := it.makeNative("Number", 1, func(it *Interp, this Value, args []Value) Value {
		if len(args) == 0 {
			return float64(0)
		}
		return it.toNumber(args[0])
	})
	ctor.setProp("prototype", Value(p))
	ctor.setProp("MAX_SAFE_INTEGER", float64(1<<53-1))
	ctor.setProp("MIN_SAFE_INTEGER", float64(-(1<<53 - 1)))
	ctor.setProp("EPSILON", math.Nextafter(1, 2)-1)
	ctor.setProp("isInteger", Value(it.makeNative("isInteger", 1, func(it *Interp, this Value, args []Value) Value {
		f, ok := arg(args, 0).(float64)
		return ok && !math.IsNaN(f) && !math.IsInf(f, 0) && f == math.Trunc(f)
	})))
	ctor.setProp("isFinite", Value(it.makeNative("isFinite", 1, func(it *Interp, this Value, args []Value) Value {
		f, ok := arg(args, 0).(float64)
		return ok && !math.IsNaN(f) && !math.IsInf(f, 0)
	})))
	ctor.setProp("isNaN", Value(it.makeNative("isNaN", 1, func(it *Interp, this Value, args []Value) Value {
		f, ok := arg(args, 0).(float64)
		return ok && math.IsNaN(f)
	})))
	ctor.setProp("parseInt", Value(it.makeNative("parseInt", 2, func(it *Interp, this Value, args []Value) Value {
		radix := 0
		if _, isU := arg(args, 1).(Undefined); !isU {
			radix = int(it.toNumber(args[1]))
		}
		return jsParseInt(it.toString(arg(args, 0)), radix)
	})))
	ctor.setProp("parseFloat", Value(it.makeNative("parseFloat", 1, func(it *Interp, this Value, args []Value) Value {
		return jsParseFloat(it.toString(arg(args, 0)))
	})))
	ctor.setProp("MAX_SAFE_INTEGER", float64(1<<53-1))
	ctor.setProp("MIN_SAFE_INTEGER", -float64(1<<53-1))
	ctor.setProp("MAX_VALUE", math.MaxFloat64)
	ctor.setProp("MIN_VALUE", 5e-324)
	ctor.setProp("POSITIVE_INFINITY", math.Inf(1))
	ctor.setProp("NEGATIVE_INFINITY", math.Inf(-1))
	ctor.setProp("NaN", math.NaN())
	p.setProp("constructor", Value(ctor))
	it.protos.numberCtor = ctor
	it.defineGlobal("Number", Value(ctor))

	bp := it.protos.booleanProto
	bp.setProp("toString", Value(it.makeNative("toString", 0, func(it *Interp, this Value, args []Value) Value {
		return it.toString(this)
	})))
	bp.setProp("valueOf", Value(it.makeNative("valueOf", 0, func(it *Interp, this Value, args []Value) Value {
		return this
	})))
	bctor := it.makeNative("Boolean", 1, func(it *Interp, this Value, args []Value) Value {
		return toBoolean(arg(args, 0))
	})
	bctor.ctor = func(it *Interp, args []Value) *Object {
		// Boolean wrapper object: truthy like every object; valueOf unwraps.
		b := toBoolean(arg(args, 0))
		o := newObject("Boolean", bp)
		o.setProp("valueOf", Value(it.makeNative("valueOf", 0, func(it *Interp, this Value, args []Value) Value {
			return b
		})))
		return o
	}
	bctor.setProp("prototype", Value(bp))
	bp.setProp("constructor", Value(bctor))
	it.protos.booleanCtor = bctor
	it.defineGlobal("Boolean", Value(bctor))
}
