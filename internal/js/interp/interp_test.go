package interp

import (
	"strings"
	"testing"
)

// runLogs executes src with default options and returns the captured console
// lines; it fails the test on a sandbox abort or unexpected uncaught error.
func runLogs(t *testing.T, src string) []string {
	t.Helper()
	res, err := Run(src, Options{})
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	if res.ErrorName != "" {
		t.Fatalf("Run(%q): uncaught %s", src, res.ErrorName)
	}
	return res.Logs
}

// langTests exercise the language core: values, operators, control flow,
// functions, closures, classes, and error handling.
var langTests = []struct {
	name string
	src  string
	want string // expected console lines joined by "\n"
}{
	{"arithmetic", `console.log(1 + 2 * 3, 10 / 4, 7 % 3, 2 ** 10, -5)`, "7 2.5 1 1024 -5"},
	{"string-concat", `console.log("a" + "b", "n=" + 5, 5 + "x")`, "ab n=5 5x"},
	{"number-format", `console.log(0.1 + 0.2, 1e21, 1/0, -1/0, 0/0, -0)`, "0.30000000000000004 1e+21 Infinity -Infinity NaN 0"},
	{"comparison", `console.log(1 < 2, "a" > "b", 3 <= 3, 4 >= 5)`, "true false true false"},
	{"equality", `console.log(1 == "1", 1 === "1", null == undefined, null === undefined, NaN == NaN)`, "true false true false false"},
	{"logical", `console.log(true && "x", false || "y", null ?? "z", !0)`, "x y z true"},
	{"bitwise", `console.log(5 & 3, 5 | 3, 5 ^ 3, ~5, 1 << 4, -16 >> 2, -16 >>> 28)`, "1 7 6 -6 16 -4 15"},
	{"ternary", `console.log(1 ? "t" : "f", 0 ? "t" : "f")`, "t f"},
	{"typeof", `console.log(typeof 1, typeof "s", typeof true, typeof undefined, typeof null, typeof {}, typeof [], typeof console.log)`, "number string boolean undefined object object object function"},
	{"typeof-undeclared", `console.log(typeof nope)`, "undefined"},
	{"void-comma", `console.log(void 0, (1, 2, 3))`, "undefined 3"},
	{"var-hoisting", `console.log(x); var x = 1; console.log(x)`, "undefined\n1"},
	{"let-const", `let a = 1; const b = 2; a = 3; console.log(a, b)`, "3 2"},
	{"fn-hoisting", `console.log(f()); function f() { return 42 }`, "42"},
	{"if-else", `if (1) console.log("a"); else console.log("b"); if (0) {} else console.log("c")`, "a\nc"},
	{"while", `var i = 0; while (i < 3) { console.log(i); i++ }`, "0\n1\n2"},
	{"do-while", `var i = 5; do { console.log(i); i++ } while (i < 3)`, "5"},
	{"for-classic", `for (var i = 0; i < 3; i++) console.log(i)`, "0\n1\n2"},
	{"for-let-capture", `var fs = []; for (let i = 0; i < 3; i++) fs.push(() => i); console.log(fs[0](), fs[2]())`, "0 2"},
	{"for-in", `var o = {a: 1, b: 2}; for (var k in o) console.log(k)`, "a\nb"},
	{"for-of", `for (const v of [10, 20]) console.log(v)`, "10\n20"},
	{"for-of-string", `for (const c of "hi") console.log(c)`, "h\ni"},
	{"break-continue", `for (var i = 0; i < 5; i++) { if (i == 1) continue; if (i == 3) break; console.log(i) }`, "0\n2"},
	{"labeled-break", `outer: for (var i = 0; i < 3; i++) { for (var j = 0; j < 3; j++) { if (j == 1) continue outer; if (i == 2) break outer; console.log(i, j) } }`, "0 0\n1 0"},
	{"switch", `switch (2) { case 1: console.log("one"); case 2: console.log("two"); case 3: console.log("three"); break; default: console.log("other") }`, "two\nthree"},
	{"switch-default", `switch ("x") { case 1: break; default: console.log("d") }`, "d"},
	{"closure", `function counter() { var n = 0; return function () { return ++n } } var c = counter(); c(); console.log(c())`, "2"},
	{"arrow-this", `var o = {n: 7, get() { return (() => this.n)() }}; console.log(o.get())`, "7"},
	{"default-params", `function f(a, b = a + 1) { return a + b } console.log(f(1), f(1, 10))`, "3 11"},
	{"rest-params", `function f(a, ...rest) { return rest.length + ":" + rest.join(",") } console.log(f(1, 2, 3, 4))`, "3:2,3,4"},
	{"spread-call", `console.log(Math.max(...[3, 1, 4, 1, 5]))`, "5"},
	{"spread-array", `console.log([0, ...[1, 2], 3].join("-"))`, "0-1-2-3"},
	{"arguments", `function f() { return arguments.length + ":" + arguments[1] } console.log(f("a", "b", "c"))`, "3:b"},
	{"named-fnexpr", `var fac = function f(n) { return n <= 1 ? 1 : n * f(n - 1) }; console.log(fac(5))`, "120"},
	{"iife", `console.log((function () { return "iife" })())`, "iife"},
	{"destructure-array", `var [a, , b = 9, ...rest] = [1, 2, undefined, 4, 5]; console.log(a, b, rest.join())`, "1 9 4,5"},
	{"destructure-object", `var {x, y: z, w = 3} = {x: 1, y: 2}; console.log(x, z, w)`, "1 2 3"},
	{"destructure-nested", `var {a: [p, q]} = {a: [8, 9]}; console.log(p, q)`, "8 9"},
	{"destructure-assign", `var a, b; [a, b] = [1, 2]; ({a: b} = {a: 7}); console.log(a, b)`, "1 7"},
	{"template-literal", "var n = 3; console.log(`n is ${n}, next ${n + 1}`)", "n is 3, next 4"},
	{"object-literal", `var k = "dy"; var o = {a: 1, ["n" + k]: 2, m() { return 3 }}; console.log(o.a, o.ndy, o.m())`, "1 2 3"},
	{"object-shorthand", `var v = 5; var o = {v}; console.log(o.v)`, "5"},
	{"getter-setter", `var o = {_x: 0, get x() { return this._x + 1 }, set x(v) { this._x = v * 2 }}; o.x = 10; console.log(o.x)`, "21"},
	{"member-chain", `var o = {a: {b: {c: 42}}}; console.log(o.a.b.c, o["a"]["b"]["c"])`, "42 42"},
	{"optional-chain", `var o = null; console.log(o?.x, o?.f?.(), ({a: 1})?.a)`, "undefined undefined 1"},
	{"delete", `var o = {a: 1}; delete o.a; console.log("a" in o, o.a)`, "false undefined"},
	{"in-operator", `console.log("a" in {a: 1}, 0 in [9], 5 in [9])`, "true true false"},
	{"instanceof", `console.log([] instanceof Array, {} instanceof Object, [] instanceof Object)`, "true true true"},
	{"update-ops", `var i = 5; console.log(i++, i, ++i, i--, --i)`, "5 6 7 7 5"},
	{"compound-assign", `var x = 10; x += 5; x -= 3; x *= 2; x /= 4; x %= 4; x **= 2; console.log(x)`, "4"},
	{"logical-assign", `var a = null, b = 0, c = 1; a ??= "A"; b ||= "B"; c &&= "C"; console.log(a, b, c)`, "A B C"},
	{"throw-catch", `try { throw new TypeError("boom") } catch (e) { console.log(e.name, e.message) }`, "TypeError boom"},
	{"throw-value", `try { throw 42 } catch (e) { console.log(typeof e, e) }`, "number 42"},
	{"catch-no-binding", `try { throw 1 } catch { console.log("caught") }`, "caught"},
	{"finally-order", `function f() { try { return "t" } finally { console.log("fin") } } console.log(f())`, "fin\nt"},
	{"nested-try", `try { try { null.x } finally { console.log("inner") } } catch (e) { console.log(e.name) }`, "inner\nTypeError"},
	{"error-types", `console.log(new RangeError("r").name, new SyntaxError().name, new ReferenceError().name, new EvalError().name, new URIError().name)`, "RangeError SyntaxError ReferenceError EvalError URIError"},
	{"error-instanceof", `var e = new TypeError(); console.log(e instanceof TypeError, e instanceof Error, e instanceof RangeError)`, "true true false"},
	{"class-basic", `class A { constructor(x) { this.x = x } get2x() { return this.x * 2 } } console.log(new A(21).get2x())`, "42"},
	{"class-extends", `class A { hi() { return "A" } } class B extends A { hi() { return super.hi() + "B" } } console.log(new B().hi())`, "AB"},
	{"class-super-ctor", `class A { constructor(x) { this.x = x } } class B extends A { constructor() { super(9); this.y = 1 } } var b = new B(); console.log(b.x, b.y)`, "9 1"},
	{"class-static", `class A { static make() { return "static" } } console.log(A.make())`, "static"},
	{"class-field", `class A { n = 3 } console.log(new A().n)`, "3"},
	{"prototype-method", `function A(x) { this.x = x } A.prototype.get = function () { return this.x }; console.log(new A(5).get())`, "5"},
	{"prototype-chain", `function A() {} A.prototype.v = "proto"; var a = new A(); console.log(a.v); a.v = "own"; console.log(a.v)`, "proto\nown"},
	{"new-return-object", `function A() { return {custom: true} } console.log(new A().custom)`, "true"},
	{"this-global-fn", `function f() { return this === undefined || this === globalThis } console.log(f())`, "true"},
	{"sloppy-global", `function f() { undeclared = 9 } f(); console.log(undeclared)`, "9"},
	{"eval-expr", `console.log(eval("1 + 2"), eval("[1,2].length"))`, "3 2"},
	{"function-ctor", `var f = new Function("a", "b", "return a * b"); console.log(f(6, 7))`, "42"},
	{"typeof-class", `class A {} console.log(typeof A)`, "function"},
	{"comma-in-for", `for (var i = 0, j = 9; i < 2; i++, j--) console.log(i, j)`, "0 9\n1 8"},
	{"string-escapes", `console.log("a\tb\nc\\d\"eA")`, "a\tb\nc\\d\"eA"},
	{"unary-plus-minus", `console.log(+"3", -"2", +true, +null, +undefined, +"")`, "3 -2 1 0 NaN 0"},
	{"exotic-coercion", `console.log([] + [], [] + {}, +[], +[[]], ![] + "")`, " [object Object] 0 0 false"},
	{"array-holes", `var a = [1, , 3]; console.log(a.length, a[1])`, "3 undefined"},
	{"stringify-cycle-safe", `var o = {}; o.self = "s"; console.log(JSON.stringify(o))`, `{"self":"s"}`},
}

func TestLanguageCore(t *testing.T) {
	for _, tc := range langTests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := strings.Join(runLogs(t, tc.src), "\n")
			if got != tc.want {
				t.Errorf("src: %s\ngot:  %q\nwant: %q", tc.src, got, tc.want)
			}
		})
	}
}

// builtinTests exercise the standard library surface.
var builtinTests = []struct {
	name string
	src  string
	want string
}{
	{"string-basics", `var s = "Hello World"; console.log(s.length, s.charAt(1), s.charCodeAt(0), s[4])`, "11 e 72 o"},
	{"string-case", `console.log("MiXeD".toLowerCase(), "MiXeD".toUpperCase())`, "mixed MIXED"},
	{"string-search", `var s = "abcabc"; console.log(s.indexOf("b"), s.lastIndexOf("b"), s.includes("ca"), s.startsWith("ab"), s.endsWith("bc"))`, "1 4 true true true"},
	{"string-slice", `var s = "abcdef"; console.log(s.slice(1, 3), s.slice(-2), s.substring(4, 2), s.substr(2, 2))`, "bc ef cd cd"},
	{"string-split", `console.log("a,b,c".split(",").join("|"), "abc".split("").join("."), "a b".split().length)`, "a|b|c a.b.c 1"},
	{"string-trim", `console.log("  x  ".trim() + "|" + " y".trimStart() + "|" + "z ".trimEnd())`, "x|y|z"},
	{"string-pad-repeat", `console.log("5".padStart(3, "0"), "ab".padEnd(4, "-"), "xy".repeat(3))`, "005 ab-- xyxyxy"},
	{"string-replace", `console.log("aaa".replace("a", "b"), "aaa".replaceAll("a", "b"), "x1y2".replace(/\d/g, "#"))`, "baa bbb x#y#"},
	{"string-replace-fn", `console.log("a1b2".replace(/\d/g, function (m) { return "<" + m + ">" }))`, "a<1>b<2>"},
	{"string-concat-at", `console.log("ab".concat("cd", "ef"), "abc".at(0), "abc".at(-1))`, "abcdef a c"},
	{"string-fromcharcode", `console.log(String.fromCharCode(72, 105), String(123), String(null))`, "Hi 123 null"},
	{"string-codepoint", `console.log("A".codePointAt(0), "ab".localeCompare("ac") < 0)`, "65 true"},
	{"number-methods", `console.log((3.14159).toFixed(2), (255).toString(16), (0.000001).toString(), Number("12"), Number(""), Number("x"))`, "3.14 ff 0.000001 12 0 NaN"},
	{"number-statics", `console.log(Number.isInteger(5), Number.isInteger(5.5), Number.isFinite(1/0), Number.parseFloat("2.5"), Number.parseInt("17"), Number.isNaN(NaN))`, "true false false 2.5 17 true"},
	{"number-consts", `console.log(Number.MAX_SAFE_INTEGER, Number.EPSILON > 0, isNaN(Number.NaN))`, "9007199254740991 true true"},
	{"parse-globals", `console.log(parseInt("42px"), parseInt("ff", 16), parseInt("0x1A"), parseFloat("3.5e2x"), parseInt("zz"))`, "42 255 26 350 NaN"},
	{"math", `console.log(Math.floor(2.7), Math.ceil(2.1), Math.round(2.5), Math.abs(-3), Math.sqrt(16), Math.pow(2, 8), Math.max(1, 9, 3), Math.min(1, 9, 3), Math.trunc(-2.7), Math.sign(-4))`, "2 3 3 3 4 256 9 1 -2 -1"},
	{"math-transcendental", `console.log(Math.log(Math.E).toFixed(3), Math.cos(0), Math.sin(0), Math.hypot(3, 4), Math.cbrt(27), Math.log2(8), Math.log10(1000))`, "1.000 1 0 5 3 3 3"},
	{"math-random-det", `var a = Math.random(), b = Math.random(); console.log(a >= 0 && a < 1, a !== b)`, "true true"},
	{"array-push-pop", `var a = [1]; a.push(2, 3); console.log(a.join(), a.pop(), a.length)`, "1,2,3 3 2"},
	{"array-shift-unshift", `var a = [2, 3]; a.unshift(1); console.log(a.join(), a.shift(), a.join())`, "1,2,3 1 2,3"},
	{"array-index", `var a = ["x", "y", "z"]; console.log(a.indexOf("y"), a.lastIndexOf("z"), a.includes("x"), a.at(-1))`, "1 2 true z"},
	{"array-slice-splice", `var a = [1, 2, 3, 4, 5]; console.log(a.slice(1, 3).join(), a.splice(1, 2, "x").join(), a.join())`, "2,3 2,3 1,x,4,5"},
	{"array-map-filter", `console.log([1, 2, 3, 4].map(x => x * x).filter(x => x > 4).join())`, "9,16"},
	{"array-reduce", `console.log([1, 2, 3].reduce((s, x) => s + x, 10), [1, 2].reduce((s, x) => s + x), [1, 2, 3].reduceRight((s, x) => s + "" + x))`, "16 3 321"},
	{"array-find", `var a = [5, 12, 8]; console.log(a.find(x => x > 6), a.findIndex(x => x > 6), a.findLast(x => x > 6), a.findLastIndex(x => x > 6))`, "12 1 8 2"},
	{"array-every-some", `console.log([2, 4].every(x => x % 2 == 0), [1, 2].some(x => x > 1), [].every(x => false))`, "true true true"},
	{"array-foreach", `[10, 20].forEach((v, i) => console.log(i, v))`, "0 10\n1 20"},
	{"array-sort", `console.log([3, 1, 10, 2].sort().join(), [3, 1, 10, 2].sort((a, b) => a - b).join(), ["b", "a"].sort().join())`, "1,10,2,3 1,2,3,10 a,b"},
	{"array-reverse-concat", `console.log([1, 2, 3].reverse().join(), [1].concat([2, 3], 4).join())`, "3,2,1 1,2,3,4"},
	{"array-flat", `console.log([1, [2, [3, [4]]]].flat().join("|"), [1, [2, [3]]].flat(2).join("|"), [1, 2].flatMap(x => [x, x * 10]).join())`, "1|2|3,4 1|2|3 1,10,2,20"},
	{"array-fill-keys", `console.log([1, 2, 3].fill(0, 1).join(), Array.from([..."ab"].keys()).join(), [..."ab"].join())`, "1,0,0 0,1 a,b"},
	{"array-statics", `console.log(Array.isArray([]), Array.isArray("no"), Array.of(1, 2).join(), Array.from("abc").join(), Array.from({length: 3}, (_, i) => i * 2).join())`, "true false 1,2 a,b,c 0,2,4"},
	{"array-ctor", `console.log(new Array(3).length, Array(1, 2, 3).join(), new Array("x").length)`, "3 1,2,3 1"},
	{"array-entries-values", `for (const [i, v] of ["a", "b"].entries()) console.log(i, v)`, "0 a\n1 b"},
	{"object-statics", `var o = {a: 1, b: 2}; console.log(Object.keys(o).join(), Object.values(o).join(), Object.entries(o).map(e => e.join("=")).join(","))`, "a,b 1,2 a=1,b=2"},
	{"object-assign", `var t = Object.assign({a: 1}, {b: 2}, {a: 3}); console.log(JSON.stringify(t))`, `{"a":3,"b":2}`},
	{"object-freeze", `var o = Object.freeze({a: 1}); o.a = 2; o.b = 3; console.log(o.a, o.b, Object.isFrozen(o))`, "1 undefined true"},
	{"object-create", `var p = {greet() { return "hi" }}; var o = Object.create(p); console.log(o.greet(), Object.getPrototypeOf(o) === p)`, "hi true"},
	{"object-hasown", `var o = Object.create({inherited: 1}); o.own = 2; console.log(o.hasOwnProperty("own"), o.hasOwnProperty("inherited"), o.inherited)`, "true false 1"},
	{"object-defineprop", `var o = {}; Object.defineProperty(o, "x", {value: 7}); console.log(o.x)`, "7"},
	{"json-stringify", `console.log(JSON.stringify({b: [1, "x", null, true], a: {}}), JSON.stringify("s"), JSON.stringify(42))`, `{"b":[1,"x",null,true],"a":{}} "s" 42`},
	{"json-stringify-special", `console.log(JSON.stringify({f: function () {}, u: undefined, n: NaN, i: 1/0}), JSON.stringify([function () {}, undefined]))`, `{"n":null,"i":null} [null,null]`},
	{"json-stringify-indent", "console.log(JSON.stringify({a: 1}, null, 2))", "{\n  \"a\": 1\n}"},
	{"json-parse", `var o = JSON.parse('{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}'); console.log(o.a[1], o.a[2], o.b.c, o.b.d)`, "2.5 x true null"},
	{"json-roundtrip", `var s = '{"z":1,"a":[true,null]}'; console.log(JSON.stringify(JSON.parse(s)))`, `{"z":1,"a":[true,null]}`},
	{"json-parse-error", `try { JSON.parse("{oops") } catch (e) { console.log(e.name) }`, "SyntaxError"},
	{"regex-test", `console.log(/\d+/.test("ab12"), /^x/.test("yx"), new RegExp("a.c").test("abc"))`, "true false true"},
	{"regex-exec", `var m = /(\w+)-(\d+)/.exec("item-42"); console.log(m[0], m[1], m[2], m.index)`, "item-42 item 42 0"},
	{"regex-exec-null", `console.log(/z/.exec("abc"))`, "null"},
	{"regex-match", `console.log("a1b22".match(/\d+/g).join(), "a1b2".match(/(\d)/)[1], "xyz".match(/\d/))`, "1,22 1 null"},
	{"regex-flags-ignorecase", `console.log(/abc/i.test("ABC"), "AbC".replace(/b/i, "_"))`, "true A_C"},
	{"regex-search-case", `console.log("hello".search(/l/), "hello".search(/z/))`, "2 -1"},
	{"regex-source", `var r = /a+b/g; console.log(r.source, r.flags, r.global, ("" + r))`, "a+b g true /a+b/g"},
	{"string-match-groups", `console.log("2024-01".replace(/(\d+)-(\d+)/, "$2/$1"), "aa".replace(/a/g, "$&$&"))`, "01/2024 aaaa"},
	{"boolean", `console.log(Boolean(0), Boolean("x"), Boolean(""), Boolean([]), new Boolean(true) ? 1 : 0)`, "false true false true 1"},
	{"map", `var m = new Map(); m.set("a", 1).set("b", 2); console.log(m.get("a"), m.size, m.has("b"), m.has("z")); m.delete("a"); console.log(m.size)`, "1 2 true false\n1"},
	{"map-from-iterable", `var m = new Map([["x", 1], ["y", 2]]); var out = []; m.forEach((v, k) => out.push(k + "=" + v)); console.log(out.join())`, "x=1,y=2"},
	{"encode-uri", `console.log(encodeURIComponent("a b&c=d"), encodeURI("a b&c=d"), decodeURIComponent("a%20b"), decodeURI("x%2Fy"))`, "a%20b%26c%3Dd a%20b&c=d a b x%2Fy"},
	{"escape-unescape", `console.log(escape("a b~"), unescape("a%20b%u0041"))`, "a%20b%7E a bA"},
	{"atob-btoa", `console.log(btoa("hello"), atob("aGVsbG8="))`, "aGVsbG8= hello"},
	{"isnan-isfinite", `console.log(isNaN("x"), isNaN("3"), isFinite(1/0), isFinite("5"))`, "true false false true"},
	{"date-now-fixed", `console.log(Date.now())`, "1700000000000"},
	{"globalthis", `globalThis.shared = 11; console.log(window.shared, self.shared, shared)`, "11 11 11"},
	{"console-variants", `console.error("e"); console.warn("w"); console.info("i"); console.debug("d")`, "e\nw\ni\nd"},
	{"console-render", `console.log([1, [2]], {a: 1, b: "x"}, null, undefined, function () {}, () => 1)`, "[ 1, [ 2 ] ] { a: 1, b: 'x' } null undefined [Function] [Function]"},
	{"fn-call-apply", `function f(a, b) { return this.base + a + b } console.log(f.call({base: 1}, 2, 3), f.apply({base: 10}, [2, 3]))`, "6 15"},
	{"fn-bind", `function f(a, b) { return this.x + a + b } var g = f.bind({x: 100}, 1); console.log(g(2), g.length >= 0)`, "103 true"},
	{"fn-tostring", `function f() {} console.log(typeof f.toString(), ("" + console.log).includes("native"))`, "string true"},
	{"promise-then", `Promise.resolve(5).then(v => console.log("got", v))`, "got 5"},
	{"promise-chain", `Promise.resolve(1).then(v => v + 1).then(v => v * 10).then(v => console.log(v))`, "20"},
	{"promise-catch", `Promise.reject(new RangeError("r")).catch(e => console.log("caught", e.name))`, "caught RangeError"},
	{"promise-finally", `Promise.resolve("v").finally(() => console.log("fin")).then(v => console.log(v))`, "fin\nv"},
	{"promise-all", `Promise.all([Promise.resolve(1), 2, Promise.resolve(3)]).then(vs => console.log(vs.join()))`, "1,2,3"},
	{"promise-ctor", `new Promise((res, rej) => res("ok")).then(v => console.log(v))`, "ok"},
	{"promise-adoption", `Promise.resolve(Promise.resolve("inner")).then(v => console.log(v))`, "inner"},
	{"settimeout-order", `setTimeout(() => console.log("late"), 10); setTimeout(() => console.log("early"), 1); console.log("sync")`, "sync\nearly\nlate"},
	{"setinterval-once", `var n = 0; setInterval(() => { n++; console.log("tick", n) }, 5)`, "tick 1"},
	{"cleartimeout", `var id = setTimeout(() => console.log("no"), 1); clearTimeout(id); setTimeout(() => console.log("yes"), 2)`, "yes"},
	{"fetch-rejects", `fetch("http://x").catch(e => console.log("fetch-blocked", e.name))`, "fetch-blocked TypeError"},
	{"module-stub", `console.log(typeof module, typeof module.exports, typeof require)`, "object object function"},
	{"document-stub", `console.log(document.querySelector("#x"), document.querySelectorAll("div").length, document.getElementById("y"))`, "null 0 null"},
	{"document-listener", `document.addEventListener("click", e => console.log("fired", typeof e.preventDefault)); console.log("sync")`, "sync\nfired function"},
}

func TestBuiltins(t *testing.T) {
	for _, tc := range builtinTests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := strings.Join(runLogs(t, tc.src), "\n")
			if got != tc.want {
				t.Errorf("src: %s\ngot:  %q\nwant: %q", tc.src, got, tc.want)
			}
		})
	}
}

// errorTests assert uncaught-error identity (the oracle's second observable
// channel).
var errorTests = []struct {
	name    string
	src     string
	wantErr string
}{
	{"null-member", `null.x`, "TypeError"},
	{"undefined-call", `var o = {}; o.missing()`, "TypeError"},
	{"not-a-function", `var x = 4; x()`, "TypeError"},
	{"undeclared-read", `console.log(missing)`, "ReferenceError"},
	{"const-assign", `const c = 1; c = 2`, "TypeError"},
	{"tdz-let", `console.log(lateLet); let lateLet = 1`, "ReferenceError"},
	{"throw-error", `throw new RangeError("out")`, "RangeError"},
	{"throw-string", `throw "plain"`, "throw:string"},
	{"throw-number", `throw 7`, "throw:number"},
	{"throw-object", `throw {code: 1}`, "throw:object"},
	{"stack-overflow", `function f() { return f() } f()`, "RangeError"},
	{"bad-array-length", `new Array(-1)`, "RangeError"},
	{"function-ctor-syntax", `new Function("return +++")()`, "SyntaxError"},
	{"eval-syntax", `eval("{{{")`, "SyntaxError"},
	{"rethrow-from-catch", `try { null.x } catch (e) { throw e }`, "TypeError"},
	{"timer-error-surfaces", `setTimeout(() => { null.x }, 1)`, "TypeError"},
}

func TestUncaughtErrors(t *testing.T) {
	for _, tc := range errorTests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.src, Options{})
			if err != nil {
				t.Fatalf("Run(%q): unexpected abort %v", tc.src, err)
			}
			if res.ErrorName != tc.wantErr {
				t.Errorf("Run(%q): ErrorName = %q, want %q", tc.src, res.ErrorName, tc.wantErr)
			}
		})
	}
}

// abortTests assert sandbox aborts: budget overruns and named unsupported
// features, each attributed via Abort.Feature.
var abortTests = []struct {
	name        string
	src         string
	opts        Options
	wantFeature string
	unsupported bool
}{
	{"steps-budget", `while (true) {}`, Options{MaxSteps: 1000}, "budget.steps", false},
	{"alloc-budget", `var s = "x"; while (true) { s += s }`, Options{MaxAlloc: 1 << 16}, "budget.alloc", false},
	{"logs-budget", `for (var i = 0; i < 100; i++) console.log(i)`, Options{MaxLogs: 10}, "budget.logs", false},
	{"parse-error", `function (`, Options{}, "feature.parse", true},
	{"date-ctor", `new Date()`, Options{}, "feature.date", true},
	{"budget-not-maskable", `try { while (true) {} } catch (e) {} finally { console.log("f") }`, Options{MaxSteps: 1000}, "budget.steps", false},
}

func TestSandboxAborts(t *testing.T) {
	for _, tc := range abortTests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.src, tc.opts)
			a, ok := err.(*Abort)
			if !ok {
				t.Fatalf("Run(%q): err = %v, want *Abort", tc.src, err)
			}
			if a.Feature != tc.wantFeature {
				t.Errorf("Feature = %q, want %q", a.Feature, tc.wantFeature)
			}
			if a.IsUnsupported() != tc.unsupported {
				t.Errorf("IsUnsupported() = %v, want %v", a.IsUnsupported(), tc.unsupported)
			}
			if a.Error() == "" {
				t.Errorf("Abort.Error() empty")
			}
		})
	}
}

// TestDeterminism runs a program touching every nondeterminism shim twice and
// requires byte-identical output.
func TestDeterminism(t *testing.T) {
	src := `
		var vals = [];
		for (var i = 0; i < 5; i++) vals.push(Math.random());
		vals.push(Date.now());
		setTimeout(() => vals.push("t2"), 2);
		setTimeout(() => vals.push("t1"), 1);
		Promise.resolve("p").then(v => vals.push(v));
		setTimeout(() => console.log(vals.join(" ")), 3);
	`
	r1, err1 := Run(src, Options{})
	r2, err2 := Run(src, Options{})
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v, %v", err1, err2)
	}
	if strings.Join(r1.Logs, "\n") != strings.Join(r2.Logs, "\n") {
		t.Errorf("nondeterministic output:\n%q\n%q", r1.Logs, r2.Logs)
	}
	if len(r1.Logs) != 1 || !strings.Contains(r1.Logs[0], "p") {
		t.Errorf("unexpected log shape: %q", r1.Logs)
	}
}

// TestStepsReported checks that Result.Steps is populated and scales with
// work done.
func TestStepsReported(t *testing.T) {
	small, _ := Run(`1 + 1`, Options{})
	big, _ := Run(`for (var i = 0; i < 1000; i++) { i * i }`, Options{})
	if small.Steps <= 0 || big.Steps <= small.Steps {
		t.Errorf("steps not increasing: small=%d big=%d", small.Steps, big.Steps)
	}
}

// TestOptionDefaults exercises the zero-value Options accessors.
func TestOptionDefaults(t *testing.T) {
	var o Options
	if o.maxSteps() <= 0 || o.maxDepth() <= 0 || o.maxAlloc() <= 0 || o.maxLogs() <= 0 || o.maxTimers() <= 0 {
		t.Errorf("zero Options must yield positive defaults: %+v", o)
	}
	custom := Options{MaxSteps: 7, MaxDepth: 8, MaxAlloc: 9, MaxLogs: 10, MaxTimers: 11}
	if custom.maxSteps() != 7 || custom.maxDepth() != 8 || custom.maxAlloc() != 9 || custom.maxLogs() != 10 || custom.maxTimers() != 11 {
		t.Errorf("explicit Options not honored: %+v", custom)
	}
}
