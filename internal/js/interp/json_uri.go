package interp

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

// jsonStringify serializes v. The boolean result is false when v is not
// serializable at top level (undefined, functions), matching JSON.stringify
// returning undefined.
func (it *Interp) jsonStringify(v Value, indent, cur string) (string, bool) {
	it.step()
	switch x := v.(type) {
	case Undefined:
		return "", false
	case Null:
		return "null", true
	case bool:
		if x {
			return "true", true
		}
		return "false", true
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return "null", true
		}
		return jsNumberString(x), true
	case string:
		b, _ := json.Marshal(x)
		return string(b), true
	case *Object:
		if x.IsFunction() {
			return "", false
		}
		nl, pad, sep, colon := "", "", ",", ":"
		next := cur
		if indent != "" {
			next = cur + indent
			nl, pad = "\n", next
			sep, colon = ",\n"+next, ": "
		}
		if x.class == "Array" || x.class == "Arguments" {
			if len(x.elems) == 0 {
				return "[]", true
			}
			parts := make([]string, len(x.elems))
			for i, el := range x.elems {
				s, ok := it.jsonStringify(el, indent, next)
				if !ok {
					s = "null" // unserializable array elements become null
				}
				parts[i] = s
			}
			return "[" + nl + pad + strings.Join(parts, sep) + nl + cur + "]", true
		}
		var parts []string
		for _, k := range x.keys {
			val := it.getMember(Value(x), k)
			s, ok := it.jsonStringify(val, indent, next)
			if !ok {
				continue // unserializable members are omitted
			}
			kb, _ := json.Marshal(k)
			parts = append(parts, string(kb)+colon+s)
		}
		if len(parts) == 0 {
			return "{}", true
		}
		return "{" + nl + pad + strings.Join(parts, sep) + nl + cur + "}", true
	}
	return "", false
}

// jsonParse parses src preserving object key order (json.Decoder tokens, not
// map[string]interface{}).
func (it *Interp) jsonParse(src string) Value {
	dec := json.NewDecoder(strings.NewReader(src))
	dec.UseNumber()
	v, err := it.jsonDecodeValue(dec)
	if err != nil {
		it.throwError("SyntaxError", "invalid JSON")
	}
	// Trailing garbage is a syntax error too.
	if dec.More() {
		it.throwError("SyntaxError", "invalid JSON")
	}
	return v
}

func (it *Interp) jsonDecodeValue(dec *json.Decoder) (Value, error) {
	tok, err := dec.Token()
	if err != nil {
		return undef, err
	}
	return it.jsonFromToken(dec, tok)
}

func (it *Interp) jsonFromToken(dec *json.Decoder, tok json.Token) (Value, error) {
	it.step()
	switch t := tok.(type) {
	case nil:
		return null, nil
	case bool:
		return t, nil
	case json.Number:
		f, err := t.Float64()
		if err != nil {
			return undef, err
		}
		return f, nil
	case string:
		it.charge(len(t))
		return t, nil
	case json.Delim:
		switch t {
		case '[':
			arr := newObject("Array", it.protos.arrayProto)
			for dec.More() {
				el, err := it.jsonDecodeValue(dec)
				if err != nil {
					return undef, err
				}
				arr.elems = append(arr.elems, el)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return undef, err
			}
			it.charge(len(arr.elems) + 1)
			return Value(arr), nil
		case '{':
			obj := newObject("Object", it.protos.objectProto)
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return undef, err
				}
				key, ok := keyTok.(string)
				if !ok {
					return undef, fmt.Errorf("non-string key")
				}
				val, err := it.jsonDecodeValue(dec)
				if err != nil {
					return undef, err
				}
				obj.setProp(key, val)
				it.charge(len(key) + 2)
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return undef, err
			}
			return Value(obj), nil
		}
	}
	return undef, fmt.Errorf("unexpected token")
}

// ---------------------------------------------------------------------------
// parseInt / parseFloat
// ---------------------------------------------------------------------------

func jsParseInt(s string, radix int) float64 {
	s = strings.TrimLeft(s, " \t\n\r\v\f")
	sign := 1.0
	if strings.HasPrefix(s, "-") {
		sign = -1
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	if radix == 0 {
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			radix = 16
			s = s[2:]
		} else {
			radix = 10
		}
	} else if radix == 16 && (strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X")) {
		s = s[2:]
	}
	if radix < 2 || radix > 36 {
		return math.NaN()
	}
	val := 0.0
	digits := 0
	for _, c := range s {
		d := digitValue(c)
		if d < 0 || d >= radix {
			break
		}
		val = val*float64(radix) + float64(d)
		digits++
	}
	if digits == 0 {
		return math.NaN()
	}
	return sign * val
}

func digitValue(c rune) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'z':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		return int(c-'A') + 10
	}
	return -1
}

func jsParseFloat(s string) float64 {
	s = strings.TrimLeft(s, " \t\n\r\v\f")
	// Longest valid decimal-literal prefix.
	i := 0
	n := len(s)
	if i < n && (s[i] == '+' || s[i] == '-') {
		i++
	}
	if strings.HasPrefix(s[i:], "Infinity") {
		if s[0] == '-' {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	start := i
	for i < n && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i < n && s[i] == '.' {
		i++
		for i < n && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	}
	if i == start || (i == start+1 && s[start] == '.') {
		return math.NaN()
	}
	if i < n && (s[i] == 'e' || s[i] == 'E') {
		j := i + 1
		if j < n && (s[j] == '+' || s[j] == '-') {
			j++
		}
		k := j
		for k < n && s[k] >= '0' && s[k] <= '9' {
			k++
		}
		if k > j {
			i = k
		}
	}
	f, ok := parseFloatPrefix(s[:i])
	if !ok {
		return math.NaN()
	}
	return f
}

func parseFloatPrefix(s string) (float64, bool) {
	var f float64
	_, err := fmt.Sscanf(s, "%g", &f)
	if err != nil {
		return 0, false
	}
	return f, true
}

// ---------------------------------------------------------------------------
// escape/unescape and percent-encoding
// ---------------------------------------------------------------------------

const escapeKeep = "@*_+-./"

// jsEscape implements the Annex B escape(): alphanumerics and @*_+-./ pass
// through; other code units below 256 become %XX; the rest become %uXXXX.
func jsEscape(s string) string {
	var out strings.Builder
	for _, r := range s {
		switch {
		case r >= 'A' && r <= 'Z', r >= 'a' && r <= 'z', r >= '0' && r <= '9',
			strings.ContainsRune(escapeKeep, r):
			out.WriteRune(r)
		case r < 256:
			fmt.Fprintf(&out, "%%%02X", r)
		default:
			fmt.Fprintf(&out, "%%u%04X", r&0xFFFF)
		}
	}
	return out.String()
}

// jsUnescape reverses jsEscape; malformed sequences pass through verbatim.
func jsUnescape(s string) string {
	var out strings.Builder
	rs := []rune(s)
	for i := 0; i < len(rs); i++ {
		if rs[i] == '%' {
			if i+5 < len(rs) && rs[i+1] == 'u' {
				if v, ok := hex4(rs[i+2 : i+6]); ok {
					out.WriteRune(rune(v))
					i += 5
					continue
				}
			}
			if i+2 < len(rs) {
				if v, ok := hex4(rs[i+1 : i+3]); ok {
					out.WriteRune(rune(v))
					i += 2
					continue
				}
			}
		}
		out.WriteRune(rs[i])
	}
	return out.String()
}

func hex4(rs []rune) (int, bool) {
	v := 0
	for _, c := range rs {
		d := digitValue(c)
		if d < 0 || d >= 16 {
			return 0, false
		}
		v = v*16 + d
	}
	return v, true
}

// percentEncode UTF-8 encodes s, escaping every byte not alphanumeric or in
// keep.
func percentEncode(s, keep string) string {
	var out strings.Builder
	for _, b := range []byte(s) {
		switch {
		case b >= 'A' && b <= 'Z', b >= 'a' && b <= 'z', b >= '0' && b <= '9',
			strings.IndexByte(keep, b) >= 0:
			out.WriteByte(b)
		default:
			fmt.Fprintf(&out, "%%%02X", b)
		}
	}
	return out.String()
}

// percentDecode reverses percentEncode; returns false on a malformed
// sequence.
func percentDecode(s, preserve string) (string, bool) {
	var out []byte
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			out = append(out, s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", false
		}
		hi := digitValue(rune(s[i+1]))
		lo := digitValue(rune(s[i+2]))
		if hi < 0 || hi >= 16 || lo < 0 || lo >= 16 {
			return "", false
		}
		b := byte(hi*16 + lo)
		// decodeURI leaves reserved separators encoded so the result can be
		// split on them exactly as the input could.
		if strings.IndexByte(preserve, b) >= 0 {
			out = append(out, s[i], s[i+1], s[i+2])
		} else {
			out = append(out, b)
		}
		i += 2
	}
	return string(out), true
}
