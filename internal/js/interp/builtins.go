package interp

import (
	"strconv"
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
)

// setupGlobals builds the builtin prototypes, constructors, and the global
// environment. The surface is exactly what the corpus generator and the ten
// transformation techniques reach: String/Array/Math/JSON plus the coercion
// machinery JSFuck-style encodings depend on, the Function constructor and
// eval for packer bootstraps, deterministic timers/Promise/fetch stubs for
// the async flavors, and a minimal document for the browser flavors.
func (it *Interp) setupGlobals() {
	p := &it.protos
	p.objectProto = &Object{class: "Object", props: map[string]*propEntry{}}
	p.funcProto = newObject("Object", p.objectProto)
	p.arrayProto = newObject("Object", p.objectProto)
	p.stringProto = newObject("Object", p.objectProto)
	p.numberProto = newObject("Object", p.objectProto)
	p.booleanProto = newObject("Object", p.objectProto)
	p.regexpProto = newObject("Object", p.objectProto)
	p.errorProto = newObject("Object", p.objectProto)
	p.mapProto = newObject("Object", p.objectProto)
	p.promiseProto = newObject("Object", p.objectProto)
	p.iterProto = newObject("Object", p.objectProto)

	it.gobj = newObject("global", p.objectProto)

	it.setupObjectProto()
	it.setupFunctionProto()
	it.setupStringBuiltins()
	it.setupNumberBuiltins()
	it.setupArrayBuiltins()
	it.setupRegexpBuiltins()
	it.setupErrorBuiltins()
	it.setupMapPromise()
	it.setupMathJSON()
	it.setupGlobalFunctions()
	it.setupHostObjects()
}

func (it *Interp) defineGlobal(name string, v Value) {
	it.global.declare(name, v, true)
}

// ---------------------------------------------------------------------------
// Object / Function prototypes
// ---------------------------------------------------------------------------

func (it *Interp) setupObjectProto() {
	p := &it.protos
	p.objectProto.setProp("toString", Value(it.makeNative("toString", 0, func(it *Interp, this Value, args []Value) Value {
		if o, ok := this.(*Object); ok {
			return it.objectDefaultString(o)
		}
		return it.toString(this)
	})))
	p.objectProto.setProp("valueOf", Value(it.makeNative("valueOf", 0, func(it *Interp, this Value, args []Value) Value {
		return this
	})))
	p.objectProto.setProp("hasOwnProperty", Value(it.makeNative("hasOwnProperty", 1, func(it *Interp, this Value, args []Value) Value {
		o, ok := this.(*Object)
		if !ok {
			return false
		}
		key := it.toString(arg(args, 0))
		if (o.class == "Array" || o.class == "Arguments") && isArrayIndex(key) {
			i, _ := strconv.Atoi(key)
			return i < len(o.elems)
		}
		_, own := o.getOwn(key)
		return own
	})))

	ctor := it.makeNative("Object", 1, func(it *Interp, this Value, args []Value) Value {
		if o, ok := arg(args, 0).(*Object); ok {
			return Value(o)
		}
		return Value(newObject("Object", it.protos.objectProto))
	})
	ctor.ctor = func(it *Interp, args []Value) *Object {
		if o, ok := arg(args, 0).(*Object); ok {
			return o
		}
		return newObject("Object", it.protos.objectProto)
	}
	ctor.setProp("prototype", Value(it.protos.objectProto))
	it.protos.objectProto.setProp("constructor", Value(ctor))
	it.protos.objectCtor = ctor
	it.defineGlobal("Object", Value(ctor))

	ownKeys := func(v Value) []string {
		o, ok := v.(*Object)
		if !ok {
			return nil
		}
		if o.class == "Array" || o.class == "Arguments" {
			out := make([]string, len(o.elems))
			for i := range o.elems {
				out[i] = jsNumberString(float64(i))
			}
			return append(out, o.keys...)
		}
		return append([]string(nil), o.keys...)
	}
	ctor.setProp("keys", Value(it.makeNative("keys", 1, func(it *Interp, this Value, args []Value) Value {
		arr := newObject("Array", it.protos.arrayProto)
		for _, k := range ownKeys(arg(args, 0)) {
			arr.elems = append(arr.elems, k)
		}
		return Value(arr)
	})))
	ctor.setProp("values", Value(it.makeNative("values", 1, func(it *Interp, this Value, args []Value) Value {
		arr := newObject("Array", it.protos.arrayProto)
		for _, k := range ownKeys(arg(args, 0)) {
			arr.elems = append(arr.elems, it.getMember(arg(args, 0), k))
		}
		return Value(arr)
	})))
	ctor.setProp("entries", Value(it.makeNative("entries", 1, func(it *Interp, this Value, args []Value) Value {
		arr := newObject("Array", it.protos.arrayProto)
		for _, k := range ownKeys(arg(args, 0)) {
			pair := newObject("Array", it.protos.arrayProto)
			pair.elems = []Value{k, it.getMember(arg(args, 0), k)}
			arr.elems = append(arr.elems, Value(pair))
		}
		return Value(arr)
	})))
	ctor.setProp("assign", Value(it.makeNative("assign", 2, func(it *Interp, this Value, args []Value) Value {
		target := arg(args, 0)
		to, ok := target.(*Object)
		if !ok {
			it.throwError("TypeError", "cannot convert value to object")
		}
		for _, src := range args[1:] {
			for _, k := range ownKeys(src) {
				to.setProp(k, it.getMember(src, k))
			}
		}
		return target
	})))
	ctor.setProp("freeze", Value(it.makeNative("freeze", 1, func(it *Interp, this Value, args []Value) Value {
		if o, ok := arg(args, 0).(*Object); ok {
			o.frozen = true
		}
		return arg(args, 0)
	})))
	ctor.setProp("isFrozen", Value(it.makeNative("isFrozen", 1, func(it *Interp, this Value, args []Value) Value {
		o, ok := arg(args, 0).(*Object)
		return !ok || o.frozen // non-objects count as frozen
	})))
	ctor.setProp("create", Value(it.makeNative("create", 1, func(it *Interp, this Value, args []Value) Value {
		proto, _ := arg(args, 0).(*Object)
		return Value(newObject("Object", proto))
	})))
	ctor.setProp("getPrototypeOf", Value(it.makeNative("getPrototypeOf", 1, func(it *Interp, this Value, args []Value) Value {
		if o, ok := arg(args, 0).(*Object); ok && o.proto != nil {
			return Value(o.proto)
		}
		return null
	})))
	ctor.setProp("defineProperty", Value(it.makeNative("defineProperty", 3, func(it *Interp, this Value, args []Value) Value {
		o, ok := arg(args, 0).(*Object)
		desc, ok2 := arg(args, 2).(*Object)
		if !ok || !ok2 {
			it.throwError("TypeError", "invalid property descriptor")
		}
		key := it.toString(arg(args, 1))
		if g, has := desc.getOwn("get"); has {
			if gf, isFn := g.value.(*Object); isFn && gf.IsFunction() {
				o.setAccessor(key, gf, nil)
			}
		}
		if s, has := desc.getOwn("set"); has {
			if sf, isFn := s.value.(*Object); isFn && sf.IsFunction() {
				o.setAccessor(key, nil, sf)
			}
		}
		if v, has := desc.getOwn("value"); has {
			o.setProp(key, v.value)
		}
		return Value(o)
	})))
}

func (it *Interp) setupFunctionProto() {
	p := &it.protos
	p.funcProto.setProp("call", Value(it.makeNative("call", 1, func(it *Interp, this Value, args []Value) Value {
		fn, ok := this.(*Object)
		if !ok || !fn.IsFunction() {
			it.throwError("TypeError", "value is not a function")
		}
		var rest []Value
		if len(args) > 1 {
			rest = args[1:]
		}
		return it.callFunction(fn, arg(args, 0), rest)
	})))
	p.funcProto.setProp("apply", Value(it.makeNative("apply", 2, func(it *Interp, this Value, args []Value) Value {
		fn, ok := this.(*Object)
		if !ok || !fn.IsFunction() {
			it.throwError("TypeError", "value is not a function")
		}
		var rest []Value
		if len(args) > 1 {
			if ao, isObj := args[1].(*Object); isObj {
				rest = append([]Value(nil), ao.elems...)
			}
		}
		return it.callFunction(fn, arg(args, 0), rest)
	})))
	p.funcProto.setProp("bind", Value(it.makeNative("bind", 1, func(it *Interp, this Value, args []Value) Value {
		fn, ok := this.(*Object)
		if !ok || !fn.IsFunction() {
			it.throwError("TypeError", "value is not a function")
		}
		boundThis := arg(args, 0)
		pre := append([]Value(nil), args[min(1, len(args)):]...)
		bound := it.makeNative("bound "+fn.name, 0, func(it *Interp, _ Value, callArgs []Value) Value {
			return it.callFunction(fn, boundThis, append(append([]Value(nil), pre...), callArgs...))
		})
		return Value(bound)
	})))
	p.funcProto.setProp("toString", Value(it.makeNative("toString", 0, func(it *Interp, this Value, args []Value) Value {
		if fn, ok := this.(*Object); ok && fn.IsFunction() {
			return it.functionSource(fn)
		}
		it.throwError("TypeError", "value is not a function")
		return undef
	})))

	// The Function constructor compiles source at runtime; JSFuck payloads,
	// packer bootstraps, and the protection templates all route through it.
	fctor := it.makeNative("Function", 1, func(it *Interp, this Value, args []Value) Value {
		return Value(it.compileFunction(args))
	})
	fctor.ctor = func(it *Interp, args []Value) *Object {
		return it.compileFunction(args)
	}
	fctor.setProp("prototype", Value(p.funcProto))
	p.funcProto.setProp("constructor", Value(fctor))
	p.funcCtor = fctor
	it.defineGlobal("Function", Value(fctor))
}

// compileFunction implements Function(p1, ..., body): the wrapper source is
// parsed once and memoized, and a parse failure surfaces as a catchable
// SyntaxError exactly like a real engine.
func (it *Interp) compileFunction(args []Value) *Object {
	params := make([]string, 0, len(args))
	body := ""
	if len(args) > 0 {
		body = it.toString(args[len(args)-1])
		for _, a := range args[:len(args)-1] {
			params = append(params, it.toString(a))
		}
	}
	src := "function anonymous(" + strings.Join(params, ",") + "\n) {\n" + body + "\n}"
	prog, ok := it.funcSrc[src]
	if !ok {
		parsed, err := parser.ParseProgram(src)
		if err != nil {
			it.throwError("SyntaxError", "invalid function body")
		}
		prog = parsed
		it.funcSrc[src] = prog
	}
	fd, ok2 := prog.Body[0].(*ast.FunctionDeclaration)
	if !ok2 {
		it.throwError("SyntaxError", "invalid function body")
	}
	fn := it.makeFunction(fd.Params, fd.Body, it.global, "anonymous", fd)
	fn.fn.source = src
	return fn
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func arg(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return undef
}
