// Package interp is a sandboxed, deterministic tree-walking interpreter for
// the ES subset accepted by internal/js/parser. It exists as the execution
// half of the semantic-equivalence oracle (internal/oracle): programs run
// with fixed time, seeded randomness, capped step/alloc/depth budgets, and no
// I/O, so an original and a transformed program can be compared on observable
// output (console lines plus the final uncaught error, if any).
//
// Two failure channels are deliberately distinct:
//
//   - JavaScript exceptions propagate as ordinary values and can be caught by
//     JS try/catch; an uncaught one ends the run and is recorded on Result.
//   - Sandbox violations — exceeding a budget, or reaching a feature the
//     interpreter does not model — abort the run with *Abort. Budget overruns
//     are not catchable by the guest program; unsupported features carry a
//     stable feature name so callers can attribute skips.
package interp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
)

// Options bound one execution.
type Options struct {
	// MaxSteps caps interpreter steps (roughly, AST nodes evaluated). Zero
	// means 5,000,000.
	MaxSteps int
	// MaxDepth caps the JS call-stack depth. Exceeding it raises a
	// *catchable* RangeError, matching engines closely enough for the
	// debug-protection transform (which relies on catching stack overflow).
	// Zero means 200.
	MaxDepth int
	// MaxAlloc caps total string bytes + array/object slots allocated.
	// Zero means 64 MiB.
	MaxAlloc int
	// MaxLogs caps captured console lines. Zero means 10,000.
	MaxLogs int
	// MaxTimers caps how many queued timer callbacks run after the main
	// script. Zero means 64.
	MaxTimers int
}

func (o Options) maxSteps() int {
	if o.MaxSteps <= 0 {
		return 5_000_000
	}
	return o.MaxSteps
}

func (o Options) maxDepth() int {
	if o.MaxDepth <= 0 {
		return 200
	}
	return o.MaxDepth
}

func (o Options) maxAlloc() int {
	if o.MaxAlloc <= 0 {
		return 64 << 20
	}
	return o.MaxAlloc
}

func (o Options) maxLogs() int {
	if o.MaxLogs <= 0 {
		return 10_000
	}
	return o.MaxLogs
}

func (o Options) maxTimers() int {
	if o.MaxTimers <= 0 {
		return 64
	}
	return o.MaxTimers
}

// Result is the observable outcome of one run.
type Result struct {
	// Logs holds the captured console output, one line per console call
	// (arguments joined by single spaces).
	Logs []string
	// ErrorName is the constructor name of the uncaught exception that ended
	// the run ("TypeError", "RangeError", ...), or "" if the program
	// completed. Error *messages* are intentionally not part of the
	// observable surface: identifier renaming changes engine-generated
	// messages but not program semantics.
	ErrorName string
	// Steps is the number of interpreter steps consumed.
	Steps int
}

// Abort is the sandbox-violation error: a budget overrun or an unsupported
// language feature. Feature is a stable machine-readable name ("budget.steps",
// "feature.generator", ...).
type Abort struct {
	Feature string
	Detail  string
}

func (a *Abort) Error() string {
	if a.Detail == "" {
		return "interp: " + a.Feature
	}
	return "interp: " + a.Feature + ": " + a.Detail
}

// IsUnsupported reports whether the abort names a language feature outside
// the sandbox's subset (as opposed to a budget overrun).
func (a *Abort) IsUnsupported() bool { return strings.HasPrefix(a.Feature, "feature.") }

// jsThrow is the panic payload for in-language exceptions.
type jsThrow struct{ v Value }

// completion kinds for statement execution.
type completionKind int

const (
	completionNormal completionKind = iota
	completionReturn
	completionBreak
	completionContinue
)

type completion struct {
	kind  completionKind
	value Value  // return value
	label string // break/continue label, "" for unlabeled
}

var normalCompletion = completion{}

// env is one scope frame. Variable lookups walk the parent chain.
type env struct {
	vars    map[string]*binding
	parent  *env
	fnScope bool // true for function-body and global frames (var hoists here)
}

type binding struct {
	value   Value
	mutable bool
}

func newEnv(parent *env, fnScope bool) *env {
	return &env{vars: make(map[string]*binding, 8), parent: parent, fnScope: fnScope}
}

func (e *env) lookup(name string) (*binding, bool) {
	for s := e; s != nil; s = s.parent {
		if b, ok := s.vars[name]; ok {
			return b, true
		}
	}
	return nil, false
}

func (e *env) declare(name string, v Value, mutable bool) {
	e.vars[name] = &binding{value: v, mutable: mutable}
}

// declareVar declares a var in the nearest function scope (hoisting target),
// keeping an existing value if the name is already bound there.
func (e *env) declareVar(name string) *binding {
	s := e
	for !s.fnScope {
		s = s.parent
	}
	if b, ok := s.vars[name]; ok {
		return b
	}
	b := &binding{value: undef, mutable: true}
	s.vars[name] = b
	return b
}

// timer is one queued setTimeout/setInterval callback.
type timer struct {
	fn    *Object
	delay float64
	seq   int
}

// Interp executes one program. It is single-use and not safe for concurrent
// use.
type Interp struct {
	opts   Options
	global *env
	gobj   *Object // the global object (window/globalThis/this at top level)

	logs  []string
	steps int
	alloc int
	depth int

	timers     []timer
	timerSeq   int
	timersRun  int
	microtasks []func()

	randState uint64

	protos  protoSet
	funcSrc map[string]*ast.Program // Function-constructor compile cache
}

// protoSet holds the shared builtin prototypes and constructors.
type protoSet struct {
	objectProto   *Object
	arrayProto    *Object
	funcProto     *Object
	stringProto   *Object
	numberProto   *Object
	booleanProto  *Object
	regexpProto   *Object
	errorProto    *Object
	mapProto      *Object
	promiseProto  *Object
	iterProto     *Object
	objectCtor    *Object
	arrayCtor     *Object
	funcCtor      *Object
	stringCtor    *Object
	numberCtor    *Object
	booleanCtor   *Object
	regexpCtor    *Object
	mapCtor       *Object
	promiseCtor   *Object
	errorCtors    map[string]*Object // Error, TypeError, RangeError, ...
	errorProtos   map[string]*Object // per-kind prototypes chained to errorProto
	jsonObj       *Object
	mathObj       *Object
	consoleObj    *Object
	documentObj   *Object
	moduleObj     *Object
	argumentsName string
}

// Run parses and executes src under opts. The error is nil for completed runs
// and for runs ending in an uncaught JS exception (recorded on Result); it is
// a *Abort for budget overruns and unsupported features.
func Run(src string, opts Options) (res Result, err error) {
	prog, perr := parser.ParseProgram(src)
	if perr != nil {
		return Result{}, &Abort{Feature: "feature.parse", Detail: perr.Error()}
	}
	return RunProgram(prog, opts)
}

// RunProgram executes an already-parsed program under opts.
func RunProgram(prog *ast.Program, opts Options) (res Result, err error) {
	it := &Interp{opts: opts, randState: 0x9e3779b97f4a7c15, funcSrc: make(map[string]*ast.Program)}
	it.global = newEnv(nil, true)
	it.setupGlobals()

	defer func() {
		res.Logs = it.logs
		res.Steps = it.steps
		if r := recover(); r != nil {
			switch x := r.(type) {
			case jsThrow:
				res.ErrorName = it.errorName(x.v)
			case *Abort:
				err = x
			default:
				panic(r)
			}
		}
	}()

	it.runBody(prog.Body, it.global)
	it.drainMicrotasks()
	it.runTimers()
	return res, nil
}

// runBody hoists and executes a statement list as a program/function body.
func (it *Interp) runBody(body []ast.Node, e *env) completion {
	it.hoist(body, e)
	for _, stmt := range body {
		c := it.execStatement(stmt, e)
		if c.kind != completionNormal {
			return c
		}
	}
	return normalCompletion
}

// hoist declares function declarations (bound to their function objects) and
// var names (bound to undefined) into the appropriate scopes, walking nested
// statements but not nested functions.
func (it *Interp) hoist(body []ast.Node, e *env) {
	// Pass 1: var names throughout the body.
	for _, stmt := range body {
		it.hoistVars(stmt, e)
	}
	// Pass 2: function declarations at this level (statement position).
	for _, stmt := range body {
		if fd, ok := stmt.(*ast.FunctionDeclaration); ok && fd.ID != nil {
			fn := it.makeFunction(fd.Params, fd.Body, e, fd.ID.Name, fd)
			it.declareHoisted(e, fd.ID.Name, fn)
		}
	}
}

// declareHoisted binds a function declaration: at function-scope frames it
// targets the frame directly; in blocks, sloppy-mode function declarations
// are block-scoped here (close enough for the generated corpus).
func (it *Interp) declareHoisted(e *env, name string, v Value) {
	e.declare(name, v, true)
}

// hoistVars walks a statement, declaring every `var` name (and nested
// function-declaration statements inside blocks, loops, etc. keep their own
// hoisting at exec time).
func (it *Interp) hoistVars(n ast.Node, e *env) {
	switch s := n.(type) {
	case *ast.VariableDeclaration:
		if s.Kind != "var" {
			return
		}
		for _, d := range s.Declarations {
			for _, name := range patternNames(d.ID) {
				e.declareVar(name)
			}
		}
	case *ast.BlockStatement:
		for _, c := range s.Body {
			it.hoistVars(c, e)
		}
	case *ast.IfStatement:
		it.hoistVars(s.Consequent, e)
		if s.Alternate != nil {
			it.hoistVars(s.Alternate, e)
		}
	case *ast.WhileStatement:
		it.hoistVars(s.Body, e)
	case *ast.DoWhileStatement:
		it.hoistVars(s.Body, e)
	case *ast.ForStatement:
		if s.Init != nil {
			it.hoistVars(s.Init, e)
		}
		it.hoistVars(s.Body, e)
	case *ast.ForInStatement:
		it.hoistVars(s.Left, e)
		it.hoistVars(s.Body, e)
	case *ast.ForOfStatement:
		it.hoistVars(s.Left, e)
		it.hoistVars(s.Body, e)
	case *ast.TryStatement:
		it.hoistVars(s.Block, e)
		if s.Handler != nil {
			it.hoistVars(s.Handler.Body, e)
		}
		if s.Finalizer != nil {
			it.hoistVars(s.Finalizer, e)
		}
	case *ast.SwitchStatement:
		for _, cs := range s.Cases {
			for _, c := range cs.Consequent {
				it.hoistVars(c, e)
			}
		}
	case *ast.LabeledStatement:
		it.hoistVars(s.Body, e)
	}
}

// patternNames collects the bound identifier names of a binding pattern.
func patternNames(n ast.Node) []string {
	var out []string
	var walk func(ast.Node)
	walk = func(n ast.Node) {
		switch p := n.(type) {
		case *ast.Identifier:
			out = append(out, p.Name)
		case *ast.ArrayPattern:
			for _, el := range p.Elements {
				if el != nil {
					walk(el)
				}
			}
		case *ast.ObjectPattern:
			for _, pr := range p.Properties {
				switch q := pr.(type) {
				case *ast.Property:
					walk(q.Value)
				case *ast.RestElement:
					walk(q.Argument)
				}
			}
		case *ast.AssignmentPattern:
			walk(p.Left)
		case *ast.RestElement:
			walk(p.Argument)
		}
	}
	walk(n)
	return out
}

// ---------------------------------------------------------------------------
// Budgets and panics
// ---------------------------------------------------------------------------

func (it *Interp) step() {
	it.steps++
	if it.steps > it.opts.maxSteps() {
		panic(&Abort{Feature: "budget.steps", Detail: fmt.Sprintf("exceeded %d steps", it.opts.maxSteps())})
	}
}

func (it *Interp) charge(n int) {
	it.alloc += n
	if it.alloc > it.opts.maxAlloc() {
		panic(&Abort{Feature: "budget.alloc", Detail: fmt.Sprintf("exceeded %d bytes", it.opts.maxAlloc())})
	}
}

func (it *Interp) unsupported(feature, detail string) {
	panic(&Abort{Feature: "feature." + feature, Detail: detail})
}

// throwError raises a catchable JS error of the given constructor name. The
// message must not mention program identifiers (renaming transforms must not
// change observable output); callers pass fixed phrasing only.
func (it *Interp) throwError(name, message string) {
	panic(jsThrow{it.newError(name, message)})
}

func (it *Interp) newError(name, message string) *Object {
	proto := it.protos.errorProto
	if p, ok := it.protos.errorProtos[name]; ok {
		proto = p
	}
	o := newObject("Error", proto)
	o.setProp("name", name)
	o.setProp("message", message)
	o.setProp("stack", name+": "+message)
	return o
}

// errorName extracts the observable error identity from a thrown value.
func (it *Interp) errorName(v Value) string {
	if o, ok := v.(*Object); ok && o.class == "Error" {
		if e, okk := o.getOwn("name"); okk {
			return it.toString(e.value)
		}
		return "Error"
	}
	// Thrown non-Error values are observed by type, not content: content may
	// legitimately differ across rename transforms only for engine-made
	// values, and user throws of primitives keep their type.
	return "throw:" + typeOf(v)
}

// ---------------------------------------------------------------------------
// Statement execution
// ---------------------------------------------------------------------------

func (it *Interp) execStatement(n ast.Node, e *env) completion {
	it.step()
	switch s := n.(type) {
	case *ast.ExpressionStatement:
		it.eval(s.Expression, e)
		return normalCompletion
	case *ast.VariableDeclaration:
		it.execVarDecl(s, e)
		return normalCompletion
	case *ast.FunctionDeclaration:
		// Bound during hoisting.
		return normalCompletion
	case *ast.BlockStatement:
		inner := newEnv(e, false)
		it.hoist(s.Body, inner)
		for _, stmt := range s.Body {
			c := it.execStatement(stmt, inner)
			if c.kind != completionNormal {
				return c
			}
		}
		return normalCompletion
	case *ast.EmptyStatement, *ast.DebuggerStatement:
		return normalCompletion
	case *ast.IfStatement:
		if toBoolean(it.eval(s.Test, e)) {
			return it.execStatement(s.Consequent, e)
		}
		if s.Alternate != nil {
			return it.execStatement(s.Alternate, e)
		}
		return normalCompletion
	case *ast.ReturnStatement:
		v := Value(undef)
		if s.Argument != nil {
			v = it.eval(s.Argument, e)
		}
		return completion{kind: completionReturn, value: v}
	case *ast.ThrowStatement:
		panic(jsThrow{it.eval(s.Argument, e)})
	case *ast.WhileStatement:
		return it.execLoop("", e, nil, s.Test, nil, s.Body, false, nil)
	case *ast.DoWhileStatement:
		return it.execLoop("", e, nil, s.Test, nil, s.Body, true, nil)
	case *ast.ForStatement:
		return it.execFor("", s, e)
	case *ast.ForInStatement:
		return it.execForInOf("", s.Left, s.Right, s.Body, e, true)
	case *ast.ForOfStatement:
		return it.execForInOf("", s.Left, s.Right, s.Body, e, false)
	case *ast.BreakStatement:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		return completion{kind: completionBreak, label: label}
	case *ast.ContinueStatement:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		return completion{kind: completionContinue, label: label}
	case *ast.LabeledStatement:
		return it.execLabeled(s, e)
	case *ast.SwitchStatement:
		return it.execSwitch(s, e)
	case *ast.TryStatement:
		return it.execTry(s, e)
	case *ast.ClassDeclaration:
		if s.ID != nil {
			e.declare(s.ID.Name, it.evalClass(s.ID, s.SuperClass, s.Body, e), true)
		}
		return normalCompletion
	case *ast.WithStatement:
		it.unsupported("with", "")
	case *ast.ImportDeclaration, *ast.ExportNamedDeclaration,
		*ast.ExportDefaultDeclaration, *ast.ExportAllDeclaration:
		it.unsupported("module-declaration", n.Type())
	default:
		it.unsupported("statement", n.Type())
	}
	return normalCompletion
}

func (it *Interp) execVarDecl(s *ast.VariableDeclaration, e *env) {
	for _, d := range s.Declarations {
		var v Value = undef
		if d.Init != nil {
			v = it.eval(d.Init, e)
		}
		if s.Kind == "var" {
			if d.Init == nil {
				// `var x;` never clobbers an earlier value.
				for _, name := range patternNames(d.ID) {
					e.declareVar(name)
				}
				continue
			}
			it.bindPattern(d.ID, v, e, func(name string, val Value) {
				b := e.declareVar(name)
				b.value = val
			})
		} else {
			mutable := s.Kind != "const"
			it.bindPattern(d.ID, v, e, func(name string, val Value) {
				e.declare(name, val, mutable)
			})
		}
	}
}

// bindPattern destructures v against the binding pattern, calling bind for
// each bound name.
func (it *Interp) bindPattern(pat ast.Node, v Value, e *env, bind func(name string, v Value)) {
	switch p := pat.(type) {
	case *ast.Identifier:
		bind(p.Name, v)
	case *ast.AssignmentPattern:
		if _, isU := v.(Undefined); isU {
			v = it.eval(p.Right, e)
		}
		it.bindPattern(p.Left, v, e, bind)
	case *ast.ArrayPattern:
		elems := it.iterableToSlice(v)
		for i, el := range p.Elements {
			if el == nil {
				continue
			}
			if rest, ok := el.(*ast.RestElement); ok {
				tail := newObject("Array", it.protos.arrayProto)
				if i < len(elems) {
					tail.elems = append(tail.elems, elems[i:]...)
				}
				it.bindPattern(rest.Argument, Value(tail), e, bind)
				break
			}
			var ev Value = undef
			if i < len(elems) {
				ev = elems[i]
			}
			it.bindPattern(el, ev, e, bind)
		}
	case *ast.ObjectPattern:
		switch v.(type) {
		case Undefined, Null:
			it.throwError("TypeError", "cannot destructure")
		}
		taken := map[string]bool{}
		for _, prop := range p.Properties {
			switch q := prop.(type) {
			case *ast.Property:
				key := it.propertyKey(q.Key, q.Computed, e)
				taken[key] = true
				it.bindPattern(q.Value, it.getMember(v, key), e, bind)
			case *ast.RestElement:
				rest := newObject("Object", it.protos.objectProto)
				if o, ok := v.(*Object); ok {
					for _, k := range o.keys {
						if !taken[k] {
							rest.setProp(k, it.getMember(v, k))
						}
					}
				}
				it.bindPattern(q.Argument, Value(rest), e, bind)
			}
		}
	default:
		it.unsupported("pattern", pat.Type())
	}
}

// iterableToSlice spreads an array-like/iterable value for destructuring,
// spread elements, and for-of.
func (it *Interp) iterableToSlice(v Value) []Value {
	switch x := v.(type) {
	case string:
		out := make([]Value, 0, len(x))
		for _, r := range x {
			out = append(out, string(r))
		}
		return out
	case *Object:
		switch x.class {
		case "Array", "Arguments", "ArrayIterator":
			return append([]Value(nil), x.elems...)
		case "Map":
			out := make([]Value, len(x.mapKeys))
			for i := range x.mapKeys {
				pair := newObject("Array", it.protos.arrayProto)
				pair.elems = []Value{x.mapKeys[i], x.mapVals[i]}
				out[i] = pair
			}
			return out
		}
		it.throwError("TypeError", "value is not iterable")
	default:
		it.throwError("TypeError", "value is not iterable")
	}
	return nil
}

// execLoop runs while/do-while (init/update nil) bodies with label handling.
func (it *Interp) execLoop(label string, e *env, init func(), test ast.Node, update func(*env), body ast.Node, doFirst bool, perIter []string) completion {
	if init != nil {
		init()
	}
	for iter := 0; ; iter++ {
		it.step()
		// do-while runs the body once before the first test; testing at the
		// top of iteration N is the same as testing after the body of N-1.
		if !(doFirst && iter == 0) {
			if test != nil && !toBoolean(it.eval(test, e)) {
				break
			}
		}
		c := it.execStatement(body, e)
		switch c.kind {
		case completionBreak:
			if c.label == "" || c.label == label {
				return normalCompletion
			}
			return c
		case completionContinue:
			if c.label != "" && c.label != label {
				return c
			}
		case completionReturn:
			return c
		}
		// `for (let ...)` gives every iteration fresh copies of the loop
		// bindings, so closures created in the body capture that iteration's
		// values. The copy happens after the body and before the update, per
		// the spec's CreatePerIterationEnvironment.
		if len(perIter) > 0 {
			next := newEnv(e.parent, false)
			for _, name := range perIter {
				if b, ok := e.vars[name]; ok {
					next.vars[name] = &binding{value: b.value, mutable: b.mutable}
				}
			}
			e = next
		}
		if update != nil {
			update(e)
		}
	}
	return normalCompletion
}

func (it *Interp) execFor(label string, s *ast.ForStatement, e *env) completion {
	inner := newEnv(e, false)
	var init func()
	var perIter []string
	if s.Init != nil {
		init = func() {
			if vd, ok := s.Init.(*ast.VariableDeclaration); ok {
				it.hoistVars(vd, inner)
				it.execVarDecl(vd, inner)
			} else {
				it.eval(s.Init, inner)
			}
		}
		if vd, ok := s.Init.(*ast.VariableDeclaration); ok && vd.Kind != "var" {
			for _, d := range vd.Declarations {
				perIter = append(perIter, patternNames(d.ID)...)
			}
		}
	}
	var update func(*env)
	if s.Update != nil {
		update = func(e *env) { it.eval(s.Update, e) }
	}
	return it.execLoop(label, inner, init, s.Test, update, s.Body, false, perIter)
}

func (it *Interp) execForInOf(label string, left, right, body ast.Node, e *env, isIn bool) completion {
	src := it.eval(right, e)
	var items []Value
	if isIn {
		switch x := src.(type) {
		case *Object:
			switch x.class {
			case "Array", "Arguments":
				for i := range x.elems {
					items = append(items, jsNumberString(float64(i)))
				}
			default:
				for _, k := range x.keys {
					items = append(items, k)
				}
			}
		case string:
			for i := range []rune(x) {
				items = append(items, jsNumberString(float64(i)))
			}
		default:
			// for-in over primitives/null/undefined iterates nothing.
		}
	} else {
		switch src.(type) {
		case Undefined, Null:
			it.throwError("TypeError", "value is not iterable")
		}
		items = it.iterableToSlice(src)
	}

	for _, item := range items {
		it.step()
		inner := newEnv(e, false)
		switch l := left.(type) {
		case *ast.VariableDeclaration:
			d := l.Declarations[0]
			if l.Kind == "var" {
				it.bindPattern(d.ID, item, inner, func(name string, v Value) {
					b := inner.declareVar(name)
					b.value = v
				})
			} else {
				it.bindPattern(d.ID, item, inner, func(name string, v Value) {
					inner.declare(name, v, l.Kind != "const")
				})
			}
		default:
			it.assignTo(left, item, inner)
		}
		c := it.execStatement(body, inner)
		switch c.kind {
		case completionBreak:
			if c.label == "" || c.label == label {
				return normalCompletion
			}
			return c
		case completionContinue:
			if c.label != "" && c.label != label {
				return c
			}
		case completionReturn:
			return c
		}
	}
	return normalCompletion
}

func (it *Interp) execLabeled(s *ast.LabeledStatement, e *env) completion {
	label := s.Label.Name
	var c completion
	switch body := s.Body.(type) {
	case *ast.WhileStatement:
		c = it.execLoop(label, e, nil, body.Test, nil, body.Body, false, nil)
	case *ast.DoWhileStatement:
		c = it.execLoop(label, e, nil, body.Test, nil, body.Body, true, nil)
	case *ast.ForStatement:
		c = it.execFor(label, body, e)
	case *ast.ForInStatement:
		c = it.execForInOf(label, body.Left, body.Right, body.Body, e, true)
	case *ast.ForOfStatement:
		c = it.execForInOf(label, body.Left, body.Right, body.Body, e, false)
	default:
		c = it.execStatement(s.Body, e)
	}
	if c.kind == completionBreak && c.label == label {
		return normalCompletion
	}
	return c
}

func (it *Interp) execSwitch(s *ast.SwitchStatement, e *env) completion {
	disc := it.eval(s.Discriminant, e)
	inner := newEnv(e, false)
	for _, cs := range s.Cases {
		for _, stmt := range cs.Consequent {
			it.hoistVars(stmt, inner)
		}
	}
	match := -1
	for i, cs := range s.Cases {
		if cs.Test == nil {
			continue
		}
		if strictEquals(disc, it.eval(cs.Test, inner)) {
			match = i
			break
		}
	}
	if match < 0 {
		for i, cs := range s.Cases {
			if cs.Test == nil {
				match = i
				break
			}
		}
	}
	if match < 0 {
		return normalCompletion
	}
	for _, cs := range s.Cases[match:] {
		for _, stmt := range cs.Consequent {
			c := it.execStatement(stmt, inner)
			switch c.kind {
			case completionBreak:
				if c.label == "" {
					return normalCompletion
				}
				return c
			case completionNormal:
			default:
				return c
			}
		}
	}
	return normalCompletion
}

func (it *Interp) execTry(s *ast.TryStatement, e *env) completion {
	// tryCatch runs the protected block, diverting JS throws (only) into the
	// handler when one is present. Sandbox aborts pass through untouched.
	tryCatch := func() completion {
		if s.Handler == nil {
			return it.execStatement(s.Block, e)
		}
		var c completion
		func() {
			defer func() {
				if r := recover(); r != nil {
					t, ok := r.(jsThrow)
					if !ok {
						panic(r)
					}
					inner := newEnv(e, false)
					if s.Handler.Param != nil {
						it.bindPattern(s.Handler.Param, t.v, inner, func(name string, v Value) {
							inner.declare(name, v, true)
						})
					}
					c = it.execStatement(s.Handler.Body, inner)
				}
			}()
			c = it.execStatement(s.Block, e)
		}()
		return c
	}

	if s.Finalizer == nil {
		return tryCatch()
	}

	var c completion
	var rethrow interface{}
	func() {
		defer func() { rethrow = recover() }()
		c = tryCatch()
	}()
	fc := it.execStatement(s.Finalizer, e)
	if rethrow != nil {
		if _, ok := rethrow.(jsThrow); !ok {
			panic(rethrow) // budget/feature aborts are not maskable by finally
		}
	}
	if fc.kind != completionNormal {
		return fc // an abrupt finally overrides the try/catch outcome
	}
	if rethrow != nil {
		panic(rethrow)
	}
	return c
}

// ---------------------------------------------------------------------------
// Functions
// ---------------------------------------------------------------------------

func (it *Interp) makeFunction(params []ast.Node, body ast.Node, e *env, name string, node ast.Node) *Object {
	o := newObject("Function", it.protos.funcProto)
	o.fn = &funcInfo{params: params, body: body, env: e, node: node}
	o.name = name
	proto := newObject("Object", it.protos.objectProto)
	proto.setProp("constructor", Value(o))
	o.setProp("prototype", Value(proto))
	o.setProp("length", float64(len(params)))
	o.setProp("name", name)
	return o
}

func (it *Interp) makeArrow(a *ast.ArrowFunctionExpression, e *env) *Object {
	o := newObject("Function", it.protos.funcProto)
	o.fn = &funcInfo{params: a.Params, body: a.Body, env: e, isArrow: true, isExpr: a.Expression, node: a}
	o.setProp("length", float64(len(a.Params)))
	o.setProp("name", "")
	return o
}

func (it *Interp) makeNative(name string, arity int, fn nativeFunc) *Object {
	o := newObject("Function", it.protos.funcProto)
	o.native = fn
	o.name = name
	o.setProp("length", float64(arity))
	o.setProp("name", name)
	return o
}

// callFunction invokes fn with this and args; it returns the function result.
func (it *Interp) callFunction(fn *Object, this Value, args []Value) Value {
	if fn == nil || !fn.IsFunction() {
		it.throwError("TypeError", "value is not a function")
	}
	it.step()
	if fn.native != nil {
		return fn.native(it, this, args)
	}
	it.depth++
	if it.depth > it.opts.maxDepth() {
		it.depth--
		// Catchable, like a real engine's stack overflow.
		it.throwError("RangeError", "Maximum call stack size exceeded")
	}
	defer func() { it.depth-- }()

	info := fn.fn
	frame := newEnv(info.env, true)
	if !info.isArrow {
		frame.declare("this", it.coerceThis(this), false)
		argsObj := newObject("Arguments", it.protos.objectProto)
		argsObj.elems = append([]Value(nil), args...)
		argsObj.setProp("length", float64(len(args)))
		frame.declare("arguments", Value(argsObj), false)
		// Named function expressions can refer to themselves.
		if fe, ok := info.node.(*ast.FunctionExpression); ok && fe.ID != nil {
			frame.declare(fe.ID.Name, Value(fn), false)
		}
	}
	it.bindParams(info.params, args, frame)

	if info.isArrow && info.isExpr {
		return it.eval(info.body, frame)
	}
	block, ok := info.body.(*ast.BlockStatement)
	if !ok {
		it.unsupported("function-body", info.body.Type())
	}
	c := it.runBody(block.Body, frame)
	if c.kind == completionReturn {
		return c.value
	}
	return undef
}

// coerceThis applies sloppy-mode this coercion: undefined/null become the
// global object; primitives are left as-is (primitive wrappers are out of
// subset, but method dispatch handles primitives separately).
func (it *Interp) coerceThis(this Value) Value {
	switch this.(type) {
	case Undefined, Null:
		return Value(it.gobj)
	}
	return this
}

func (it *Interp) bindParams(params []ast.Node, args []Value, frame *env) {
	for i, p := range params {
		if rest, ok := p.(*ast.RestElement); ok {
			tail := newObject("Array", it.protos.arrayProto)
			if i < len(args) {
				tail.elems = append(tail.elems, args[i:]...)
			}
			it.bindPattern(rest.Argument, Value(tail), frame, func(name string, v Value) {
				frame.declare(name, v, true)
			})
			return
		}
		var v Value = undef
		if i < len(args) {
			v = args[i]
		}
		it.bindPattern(p, v, frame, func(name string, v Value) {
			frame.declare(name, v, true)
		})
	}
}

// construct implements `new fn(args)`.
func (it *Interp) construct(fn *Object, args []Value) Value {
	if fn == nil || !fn.IsFunction() {
		it.throwError("TypeError", "value is not a constructor")
	}
	if fn.ctor != nil {
		return Value(fn.ctor(it, args))
	}
	if fn.native != nil {
		it.throwError("TypeError", "value is not a constructor")
	}
	if fn.fn.isArrow {
		it.throwError("TypeError", "value is not a constructor")
	}
	proto := it.protos.objectProto
	if pv, ok := fn.getOwn("prototype"); ok {
		if po, okk := pv.value.(*Object); okk {
			proto = po
		}
	}
	self := newObject("Object", proto)
	if len(fn.fn.classFields) > 0 {
		it.initClassFields(fn, self)
	}
	if fn.fn.implicitSuper && fn.fn.superCtor != nil {
		it.invokeSuper(fn.fn.superCtor, self, args)
	}
	r := it.callFunction(fn, Value(self), args)
	if ro, ok := r.(*Object); ok {
		return Value(ro)
	}
	return Value(self)
}

// invokeSuper runs a parent class constructor against an already-allocated
// instance: instance fields first, then any implicit super chain above it,
// then the constructor body itself. Native superclasses (e.g. extending a
// builtin) have no sandbox-visible body to run.
func (it *Interp) invokeSuper(super *Object, self *Object, args []Value) {
	if super.fn == nil {
		return
	}
	if len(super.fn.classFields) > 0 {
		it.initClassFields(super, self)
	}
	if super.fn.implicitSuper && super.fn.superCtor != nil {
		it.invokeSuper(super.fn.superCtor, self, args)
	}
	it.callFunction(super, Value(self), args)
}

// ---------------------------------------------------------------------------
// Timers and microtasks
// ---------------------------------------------------------------------------

func (it *Interp) drainMicrotasks() {
	for len(it.microtasks) > 0 {
		it.step()
		task := it.microtasks[0]
		it.microtasks = it.microtasks[1:]
		task()
	}
}

// runTimers fires queued timer callbacks deterministically: ordered by
// (delay, insertion sequence), each at most once (setInterval fires a single
// tick in the sandbox), with microtasks drained between callbacks. Uncaught
// exceptions inside timer callbacks propagate and end the run, like an
// unhandled error event.
func (it *Interp) runTimers() {
	for len(it.timers) > 0 && it.timersRun < it.opts.maxTimers() {
		sort.SliceStable(it.timers, func(i, j int) bool {
			if it.timers[i].delay != it.timers[j].delay {
				return it.timers[i].delay < it.timers[j].delay
			}
			return it.timers[i].seq < it.timers[j].seq
		})
		t := it.timers[0]
		it.timers = it.timers[1:]
		it.timersRun++
		it.callFunction(t.fn, undef, nil)
		it.drainMicrotasks()
	}
	it.timers = nil
}

func (it *Interp) addTimer(fn *Object, delay float64) float64 {
	it.timerSeq++
	if len(it.timers) < it.opts.maxTimers() {
		it.timers = append(it.timers, timer{fn: fn, delay: delay, seq: it.timerSeq})
	}
	return float64(it.timerSeq)
}

// nextRandom is a deterministic xorshift for Math.random.
func (it *Interp) nextRandom() float64 {
	x := it.randState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	it.randState = x
	return float64(x>>11) / float64(1<<53)
}

// log captures one console line.
func (it *Interp) log(args []Value) {
	if len(it.logs) >= it.opts.maxLogs() {
		panic(&Abort{Feature: "budget.logs", Detail: fmt.Sprintf("exceeded %d console lines", it.opts.maxLogs())})
	}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = it.renderTop(a)
		it.charge(len(parts[i]))
	}
	it.logs = append(it.logs, strings.Join(parts, " "))
}
