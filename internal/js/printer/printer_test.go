package printer

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
)

// compactOf parses and compact-prints.
func compactOf(t *testing.T, src string) string {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Compact(prog)
}

func TestCompactOutput(t *testing.T) {
	tests := map[string]string{
		`var x = 1;`:                        `var x=1;`,
		`if (a) { b(); } else { c(); }`:     `if(a){b();}else{c();}`,
		`x = a + b;`:                        `x=a+b;`,
		`return;`:                           `return;`,
		`for (var i = 0; i < 3; i++) f(i);`: `for(var i=0;i<3;i++)f(i);`,
		`x = a in b;`:                       `x=a in b;`,
		`x = typeof a;`:                     `x=typeof a;`,
		`x = a instanceof B;`:               `x=a instanceof B;`,
		`throw new Error("x");`:             `throw new Error("x");`,
		`x = y ? 1 : 2;`:                    `x=y?1:2;`,
		`x = function () { return 1; };`:    `x=function(){return 1;};`,
		`x = -(-y);`:                        `x=- -y;`,
		`x = +(+y);`:                        `x=+ +y;`,
		`x = 1000000;`:                      `x=1e6;`,
		`x = {a: 1};`:                       `x={a:1};`,
		`delete a.b;`:                       `delete a.b;`,
		`x = (a, b);`:                       `x=(a,b);`,
	}
	for src, want := range tests {
		if got := compactOf(t, src); got != want {
			t.Fatalf("compact(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestParenthesization(t *testing.T) {
	// Cases where parentheses are required for correctness.
	tests := []string{
		`x = (a + b) * c;`,
		`x = a * (b + c);`,
		`x = (a = b) + 1;`,
		`x = -(a + b);`,
		`(function () {})();`,
		`x = (a ? b : c) ? d : e;`,
		`new (f())();`,
		`x = (a, b), c;`,
		`x = a ** (b ** c);`,
		`x = (a ** b) ** c;`,
		`({a} = b);`,
	}
	for _, src := range tests {
		prog1, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		out := Compact(prog1)
		prog2, err := parser.ParseProgram(out)
		if err != nil {
			t.Fatalf("%q printed as %q which does not reparse: %v", src, out, err)
		}
		if again := Compact(prog2); again != out {
			t.Fatalf("not a fixed point: %q -> %q -> %q", src, out, again)
		}
	}
}

func TestPrettyIndentation(t *testing.T) {
	prog, err := parser.ParseProgram(`function f(){if(a){b();}}`)
	if err != nil {
		t.Fatal(err)
	}
	out := Pretty(prog)
	if !strings.Contains(out, "\n  if (a) {\n    b();\n  }\n") {
		t.Fatalf("unexpected pretty output:\n%s", out)
	}
}

func TestFormatNumber(t *testing.T) {
	tests := map[float64]string{
		0:       "0",
		1:       "1",
		1.5:     "1.5",
		1000000: "1e6",
		0.001:   "0.001",
		31:      "31",
	}
	for in, want := range tests {
		if got := FormatNumber(in); got != want {
			t.Fatalf("FormatNumber(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestQuoteString(t *testing.T) {
	tests := map[string]string{
		"plain":     `"plain"`,
		"with\nnl":  `"with\nnl"`,
		`has"quote`: `'has"quote'`,
		`both"and'`: `"both\"and'"`,
		"tab\there": `"tab\there"`,
		"null\x00":  `"null\0"`,
		"ctrl\x01":  `"ctrl\x01"`,
	}
	for in, want := range tests {
		if got := QuoteString(in); got != want {
			t.Fatalf("QuoteString(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestQuoteStringRoundTripProperty: any string quoted by the printer lexes
// back to the identical value.
func TestQuoteStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if !isValidUTF8(s) {
			return true
		}
		quoted := QuoteString(s)
		prog, err := parser.ParseProgram("x = " + quoted + ";")
		if err != nil {
			return false
		}
		es := prog.Body[0].(*ast.ExpressionStatement)
		assign := es.Expression.(*ast.AssignmentExpression)
		lit, ok := assign.Right.(*ast.Literal)
		return ok && lit.Kind == ast.LiteralString && lit.String == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func isValidUTF8(s string) bool {
	for _, r := range s {
		if r == 0xFFFD {
			return false // replacement char: input was not valid UTF-8
		}
	}
	return true
}

func TestMinifiedASIHazards(t *testing.T) {
	// `return` with argument must not merge into the next identifier;
	// `a + +b` must not merge into `a ++ b`.
	srcs := []string{
		`function f() { return value; }`,
		`x = a + +b;`,
		`x = a - -b;`,
		`x = a / re;`,
	}
	for _, src := range srcs {
		out := compactOf(t, src)
		if _, err := parser.ParseProgram(out); err != nil {
			t.Fatalf("minified %q = %q does not reparse: %v", src, out, err)
		}
	}
}

func TestObjectAtStatementStart(t *testing.T) {
	prog := &ast.Program{Body: []ast.Node{
		&ast.ExpressionStatement{Expression: &ast.ObjectExpression{}},
	}}
	out := Compact(prog)
	if !strings.HasPrefix(out, "(") {
		t.Fatalf("object at statement start needs parens: %q", out)
	}
	if _, err := parser.ParseProgram(out); err != nil {
		t.Fatalf("%q does not reparse: %v", out, err)
	}
}

func TestNumberMemberAccess(t *testing.T) {
	prog := &ast.Program{Body: []ast.Node{
		&ast.ExpressionStatement{Expression: &ast.MemberExpression{
			Object:   ast.NewNumber(42),
			Property: ast.NewIdentifier("toString"),
		}},
	}}
	out := Compact(prog)
	if _, err := parser.ParseProgram(out); err != nil {
		t.Fatalf("%q does not reparse: %v", out, err)
	}
	if !strings.Contains(out, "(42)") {
		t.Fatalf("expected parenthesized number, got %q", out)
	}
}

func TestTemplatePrinting(t *testing.T) {
	for _, src := range []string{
		"x = `a${b}c`;",
		"x = `with \\` backtick`;",
		"x = `with ${`nested ${deep}`} inner`;",
		"x = tag`tpl`;",
	} {
		out := compactOf(t, src)
		if _, err := parser.ParseProgram(out); err != nil {
			t.Fatalf("%q -> %q does not reparse: %v", src, out, err)
		}
	}
}

func TestClassFieldPrinting(t *testing.T) {
	src := `class A { x = 1; static y = "s"; #z; m() { return this.x; } }`
	out := compactOf(t, src)
	for _, want := range []string{"x=1;", `static y="s";`, "#z;", "m()"} {
		if !strings.Contains(out, want) {
			t.Fatalf("compact output %q missing %q", out, want)
		}
	}
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	pretty := Pretty(prog)
	if _, err := parser.ParseProgram(pretty); err != nil {
		t.Fatalf("pretty class fields do not reparse: %v\n%s", err, pretty)
	}
}
