// Package printer generates JavaScript source from the AST. It supports a
// pretty mode (indented, one statement per line) used when materializing
// synthesized regular code, and a compact mode (all optional whitespace
// removed) used by the minification transformers.
package printer

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/js/ast"
)

// Options configures code generation.
type Options struct {
	// Minify removes all optional whitespace and newlines.
	Minify bool
	// Indent is the indentation unit for pretty mode; defaults to two
	// spaces.
	Indent string
}

// Print renders the AST subtree n as JavaScript source.
func Print(n ast.Node, opts Options) string {
	if opts.Indent == "" {
		opts.Indent = "  "
	}
	p := &printer{opts: opts}
	p.printNode(n)
	return p.sb.String()
}

// Pretty renders n with default pretty-printing options.
func Pretty(n ast.Node) string { return Print(n, Options{}) }

// Compact renders n with all optional whitespace removed.
func Compact(n ast.Node) string { return Print(n, Options{Minify: true}) }

// Expression precedence levels, escodegen-style. Higher binds tighter.
const (
	precSequence    = 0
	precAssignment  = 1
	precConditional = 2
	precNullish     = 3
	precLogicalOr   = 4
	precLogicalAnd  = 5
	precBitwiseOr   = 6
	precBitwiseXor  = 7
	precBitwiseAnd  = 8
	precEquality    = 9
	precRelational  = 10
	precShift       = 11
	precAdditive    = 12
	precMultiplic   = 13
	precExponent    = 14
	precUnary       = 15
	precPostfix     = 16
	precCall        = 17
	precNew         = 18
	precMember      = 19
	precPrimary     = 20
)

var binPrec = map[string]int{
	"??": precNullish,
	"||": precLogicalOr, "&&": precLogicalAnd,
	"|": precBitwiseOr, "^": precBitwiseXor, "&": precBitwiseAnd,
	"==": precEquality, "!=": precEquality, "===": precEquality, "!==": precEquality,
	"<": precRelational, ">": precRelational, "<=": precRelational, ">=": precRelational,
	"in": precRelational, "instanceof": precRelational,
	"<<": precShift, ">>": precShift, ">>>": precShift,
	"+": precAdditive, "-": precAdditive,
	"*": precMultiplic, "/": precMultiplic, "%": precMultiplic,
	"**": precExponent,
}

type printer struct {
	opts   Options
	sb     strings.Builder
	indent int
}

// emit writes s, inserting a separating space when the previous character
// would otherwise merge with the start of s (identifier glue, `+ +`, `- -`).
func (p *printer) emit(s string) {
	if s == "" {
		return
	}
	if p.sb.Len() > 0 {
		prev := p.sb.String()[p.sb.Len()-1]
		c := s[0]
		if needsSpace(prev, c) {
			p.sb.WriteByte(' ')
		}
	}
	p.sb.WriteString(s)
}

func isIdentChar(c byte) bool {
	return c == '$' || c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c >= 0x80
}

func needsSpace(prev, next byte) bool {
	if isIdentChar(prev) && isIdentChar(next) {
		return true
	}
	// `+ +x`, `- -x`, `a+ ++b` must not merge into ++/--.
	if (prev == '+' && next == '+') || (prev == '-' && next == '-') {
		return true
	}
	// `a / /re/` merging into a line comment.
	if prev == '/' && next == '/' {
		return true
	}
	return false
}

func (p *printer) nl() {
	if p.opts.Minify {
		return
	}
	p.sb.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString(p.opts.Indent)
	}
}

// space emits a cosmetic space in pretty mode only.
func (p *printer) space() {
	if !p.opts.Minify {
		p.sb.WriteByte(' ')
	}
}

func (p *printer) printNode(n ast.Node) {
	switch v := n.(type) {
	case *ast.Program:
		for i, stmt := range v.Body {
			if i > 0 {
				p.nl()
			}
			p.printStmt(stmt)
		}
	default:
		if ast.IsStatement(n) {
			p.printStmt(n)
		} else {
			p.printExpr(n, precSequence)
		}
	}
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *printer) printStmt(n ast.Node) {
	switch v := n.(type) {
	case *ast.ExpressionStatement:
		p.printExpressionStatement(v)
	case *ast.BlockStatement:
		p.printBlock(v)
	case *ast.EmptyStatement:
		p.emit(";")
	case *ast.DebuggerStatement:
		p.emit("debugger;")
	case *ast.VariableDeclaration:
		p.printVarDecl(v)
		p.emit(";")
	case *ast.FunctionDeclaration:
		p.printFunction("function", v.ID, v.Params, v.Body, v.Generator, v.Async)
	case *ast.ClassDeclaration:
		p.printClass(v.ID, v.SuperClass, v.Body)
	case *ast.IfStatement:
		p.emit("if")
		p.space()
		p.emit("(")
		p.printExpr(v.Test, precSequence)
		p.emit(")")
		p.printNestedStmt(v.Consequent, v.Alternate != nil)
		if v.Alternate != nil {
			if _, ok := v.Consequent.(*ast.BlockStatement); ok {
				p.space()
			} else {
				p.nl()
			}
			p.emit("else")
			if alt, ok := v.Alternate.(*ast.IfStatement); ok {
				p.sb.WriteByte(' ')
				p.printStmt(alt)
			} else {
				p.printNestedStmt(v.Alternate, false)
			}
		}
	case *ast.SwitchStatement:
		p.emit("switch")
		p.space()
		p.emit("(")
		p.printExpr(v.Discriminant, precSequence)
		p.emit(")")
		p.space()
		p.emit("{")
		p.indent++
		for _, c := range v.Cases {
			p.nl()
			if c.Test != nil {
				p.emit("case")
				p.sb.WriteByte(' ')
				p.printExpr(c.Test, precSequence)
				p.emit(":")
			} else {
				p.emit("default:")
			}
			p.indent++
			for _, s := range c.Consequent {
				p.nl()
				p.printStmt(s)
			}
			p.indent--
		}
		p.indent--
		p.nl()
		p.emit("}")
	case *ast.ReturnStatement:
		p.emit("return")
		if v.Argument != nil {
			p.sb.WriteByte(' ')
			p.printExpr(v.Argument, precSequence)
		}
		p.emit(";")
	case *ast.ThrowStatement:
		p.emit("throw")
		p.sb.WriteByte(' ')
		p.printExpr(v.Argument, precSequence)
		p.emit(";")
	case *ast.TryStatement:
		p.emit("try")
		p.space()
		p.printBlock(v.Block)
		if v.Handler != nil {
			p.space()
			p.emit("catch")
			if v.Handler.Param != nil {
				p.space()
				p.emit("(")
				p.printExpr(v.Handler.Param, precSequence)
				p.emit(")")
			}
			p.space()
			p.printBlock(v.Handler.Body)
		}
		if v.Finalizer != nil {
			p.space()
			p.emit("finally")
			p.space()
			p.printBlock(v.Finalizer)
		}
	case *ast.WhileStatement:
		p.emit("while")
		p.space()
		p.emit("(")
		p.printExpr(v.Test, precSequence)
		p.emit(")")
		p.printNestedStmt(v.Body, false)
	case *ast.DoWhileStatement:
		p.emit("do")
		p.printNestedStmt(v.Body, true)
		p.space()
		p.emit("while")
		p.space()
		p.emit("(")
		p.printExpr(v.Test, precSequence)
		p.emit(");")
	case *ast.ForStatement:
		p.emit("for")
		p.space()
		p.emit("(")
		if v.Init != nil {
			if decl, ok := v.Init.(*ast.VariableDeclaration); ok {
				p.printVarDecl(decl)
			} else {
				p.printExpr(v.Init, precSequence)
			}
		}
		p.emit(";")
		if v.Test != nil {
			p.space()
			p.printExpr(v.Test, precSequence)
		}
		p.emit(";")
		if v.Update != nil {
			p.space()
			p.printExpr(v.Update, precSequence)
		}
		p.emit(")")
		p.printNestedStmt(v.Body, false)
	case *ast.ForInStatement:
		p.printForInOf("in", v.Left, v.Right, v.Body, false)
	case *ast.ForOfStatement:
		p.printForInOf("of", v.Left, v.Right, v.Body, v.Await)
	case *ast.BreakStatement:
		p.emit("break")
		if v.Label != nil {
			p.sb.WriteByte(' ')
			p.emit(v.Label.Name)
		}
		p.emit(";")
	case *ast.ContinueStatement:
		p.emit("continue")
		if v.Label != nil {
			p.sb.WriteByte(' ')
			p.emit(v.Label.Name)
		}
		p.emit(";")
	case *ast.LabeledStatement:
		p.emit(v.Label.Name)
		p.emit(":")
		p.space()
		p.printStmt(v.Body)
	case *ast.WithStatement:
		p.emit("with")
		p.space()
		p.emit("(")
		p.printExpr(v.Object, precSequence)
		p.emit(")")
		p.printNestedStmt(v.Body, false)
	case *ast.ImportDeclaration:
		p.printImport(v)
	case *ast.ExportNamedDeclaration:
		p.printExportNamed(v)
	case *ast.ExportDefaultDeclaration:
		p.emit("export")
		p.sb.WriteByte(' ')
		p.emit("default")
		p.sb.WriteByte(' ')
		switch d := v.Declaration.(type) {
		case *ast.FunctionDeclaration:
			p.printFunction("function", d.ID, d.Params, d.Body, d.Generator, d.Async)
		case *ast.ClassDeclaration:
			p.printClass(d.ID, d.SuperClass, d.Body)
		default:
			p.printExpr(v.Declaration, precAssignment)
			p.emit(";")
		}
	case *ast.ExportAllDeclaration:
		p.emit("export")
		p.emit("*")
		p.emit("from")
		p.printLiteral(v.Source)
		p.emit(";")
	default:
		// An expression in statement position (defensive).
		p.printExpr(n, precSequence)
		p.emit(";")
	}
}

func (p *printer) printExpressionStatement(v *ast.ExpressionStatement) {
	// Expressions that would be misparsed at statement start get parens.
	needParens := startsAmbiguously(v.Expression)
	if needParens {
		p.emit("(")
	}
	p.printExpr(v.Expression, precSequence)
	if needParens {
		p.emit(")")
	}
	p.emit(";")
}

// startsAmbiguously reports whether an expression at statement start would be
// parsed as a declaration or block ({, function, class).
func startsAmbiguously(n ast.Node) bool {
	switch v := n.(type) {
	case *ast.ObjectExpression, *ast.FunctionExpression, *ast.ClassExpression:
		return true
	case *ast.AssignmentExpression:
		return startsAmbiguously(v.Left)
	case *ast.BinaryExpression:
		return startsAmbiguously(v.Left)
	case *ast.LogicalExpression:
		return startsAmbiguously(v.Left)
	case *ast.ConditionalExpression:
		return startsAmbiguously(v.Test)
	case *ast.SequenceExpression:
		return len(v.Expressions) > 0 && startsAmbiguously(v.Expressions[0])
	case *ast.MemberExpression:
		return startsAmbiguously(v.Object)
	case *ast.CallExpression:
		return startsAmbiguously(v.Callee)
	case *ast.TaggedTemplateExpression:
		return startsAmbiguously(v.Tag)
	case *ast.UpdateExpression:
		return !v.Prefix && startsAmbiguously(v.Argument)
	case *ast.ObjectPattern:
		return true
	default:
		return false
	}
}

// printNestedStmt prints a statement that is the body of a control construct.
func (p *printer) printNestedStmt(n ast.Node, noTrailingBreak bool) {
	if blk, ok := n.(*ast.BlockStatement); ok {
		p.space()
		p.printBlock(blk)
		return
	}
	if p.opts.Minify {
		p.printStmt(n)
		return
	}
	p.indent++
	p.nl()
	p.printStmt(n)
	p.indent--
	_ = noTrailingBreak
}

func (p *printer) printBlock(b *ast.BlockStatement) {
	p.emit("{")
	if len(b.Body) == 0 {
		p.emit("}")
		return
	}
	p.indent++
	for _, s := range b.Body {
		p.nl()
		p.printStmt(s)
	}
	p.indent--
	p.nl()
	p.emit("}")
}

func (p *printer) printVarDecl(v *ast.VariableDeclaration) {
	p.emit(v.Kind)
	p.sb.WriteByte(' ')
	for i, d := range v.Declarations {
		if i > 0 {
			p.emit(",")
			p.space()
		}
		p.printExpr(d.ID, precAssignment)
		if d.Init != nil {
			p.space()
			p.emit("=")
			p.space()
			p.printExpr(d.Init, precAssignment)
		}
	}
}

func (p *printer) printForInOf(op string, left, right, body ast.Node, isAwait bool) {
	p.emit("for")
	if isAwait {
		p.sb.WriteByte(' ')
		p.emit("await")
	}
	p.space()
	p.emit("(")
	if decl, ok := left.(*ast.VariableDeclaration); ok {
		p.printVarDecl(decl)
	} else {
		p.printExpr(left, precAssignment)
	}
	p.sb.WriteByte(' ')
	p.emit(op)
	p.sb.WriteByte(' ')
	p.printExpr(right, precAssignment)
	p.emit(")")
	p.printNestedStmt(body, false)
}

func (p *printer) printImport(v *ast.ImportDeclaration) {
	p.emit("import")
	if len(v.Specifiers) == 0 {
		p.sb.WriteByte(' ')
		p.printLiteral(v.Source)
		p.emit(";")
		return
	}
	p.sb.WriteByte(' ')
	named := false
	first := true
	for _, s := range v.Specifiers {
		switch sp := s.(type) {
		case *ast.ImportDefaultSpecifier:
			if !first {
				p.emit(",")
				p.space()
			}
			p.emit(sp.Local.Name)
		case *ast.ImportNamespaceSpecifier:
			if !first {
				p.emit(",")
				p.space()
			}
			p.emit("*")
			p.emit("as")
			p.sb.WriteByte(' ')
			p.emit(sp.Local.Name)
		case *ast.ImportSpecifier:
			if !named {
				if !first {
					p.emit(",")
					p.space()
				}
				p.emit("{")
				named = true
			} else {
				p.emit(",")
				p.space()
			}
			p.emit(sp.Imported.Name)
			if sp.Local.Name != sp.Imported.Name {
				p.sb.WriteByte(' ')
				p.emit("as")
				p.sb.WriteByte(' ')
				p.emit(sp.Local.Name)
			}
		}
		first = false
	}
	if named {
		p.emit("}")
	}
	p.sb.WriteByte(' ')
	p.emit("from")
	p.sb.WriteByte(' ')
	p.printLiteral(v.Source)
	p.emit(";")
}

func (p *printer) printExportNamed(v *ast.ExportNamedDeclaration) {
	p.emit("export")
	if v.Declaration != nil {
		p.sb.WriteByte(' ')
		p.printStmt(v.Declaration)
		return
	}
	p.space()
	p.emit("{")
	for i, s := range v.Specifiers {
		if i > 0 {
			p.emit(",")
			p.space()
		}
		p.emit(s.Local.Name)
		if s.Exported.Name != s.Local.Name {
			p.sb.WriteByte(' ')
			p.emit("as")
			p.sb.WriteByte(' ')
			p.emit(s.Exported.Name)
		}
	}
	p.emit("}")
	if v.Source != nil {
		p.space()
		p.emit("from")
		p.space()
		p.printLiteral(v.Source)
	}
	p.emit(";")
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

func exprPrec(n ast.Node) int {
	switch v := n.(type) {
	case *ast.SequenceExpression:
		return precSequence
	case *ast.AssignmentExpression, *ast.ArrowFunctionExpression, *ast.YieldExpression:
		return precAssignment
	case *ast.ConditionalExpression:
		return precConditional
	case *ast.LogicalExpression:
		return binPrec[v.Operator]
	case *ast.BinaryExpression:
		return binPrec[v.Operator]
	case *ast.UnaryExpression, *ast.AwaitExpression:
		return precUnary
	case *ast.UpdateExpression:
		if v.Prefix {
			return precUnary
		}
		return precPostfix
	case *ast.CallExpression:
		return precCall
	case *ast.NewExpression:
		if len(v.Arguments) == 0 {
			return precNew
		}
		return precMember
	case *ast.MemberExpression, *ast.TaggedTemplateExpression:
		return precMember
	default:
		return precPrimary
	}
}

func (p *printer) printExpr(n ast.Node, minPrec int) {
	prec := exprPrec(n)
	wrap := prec < minPrec
	if wrap {
		p.emit("(")
	}
	p.printExprInner(n)
	if wrap {
		p.emit(")")
	}
}

func (p *printer) printExprInner(n ast.Node) {
	switch v := n.(type) {
	case *ast.Identifier:
		p.emit(v.Name)
	case *ast.Literal:
		p.printLiteral(v)
	case *ast.ThisExpression:
		p.emit("this")
	case *ast.Super:
		p.emit("super")
	case *ast.MetaProperty:
		p.emit(v.Meta.Name)
		p.emit(".")
		p.emit(v.Property.Name)
	case *ast.ArrayExpression:
		p.emit("[")
		for i, el := range v.Elements {
			if i > 0 {
				p.emit(",")
				p.space()
			}
			if el == nil {
				continue
			}
			p.printExpr(el, precAssignment)
		}
		p.emit("]")
	case *ast.ObjectExpression:
		p.printObject(v.Properties)
	case *ast.Property:
		p.printProperty(v)
	case *ast.SpreadElement:
		p.emit("...")
		p.printExpr(v.Argument, precAssignment)
	case *ast.FunctionExpression:
		p.printFunction("function", v.ID, v.Params, v.Body, v.Generator, v.Async)
	case *ast.ArrowFunctionExpression:
		p.printArrow(v)
	case *ast.ClassExpression:
		p.printClass(v.ID, v.SuperClass, v.Body)
	case *ast.TemplateLiteral:
		p.printTemplate(v)
	case *ast.TaggedTemplateExpression:
		p.printExpr(v.Tag, precMember)
		p.printTemplate(v.Quasi)
	case *ast.MemberExpression:
		p.printMember(v)
	case *ast.CallExpression:
		p.printExpr(v.Callee, precCall)
		if v.Optional {
			p.emit("?.")
		}
		p.printArgs(v.Arguments)
	case *ast.NewExpression:
		p.emit("new")
		p.sb.WriteByte(' ')
		if calleeContainsCall(v.Callee) {
			p.emit("(")
			p.printExpr(v.Callee, precSequence)
			p.emit(")")
		} else {
			p.printExpr(v.Callee, precNew)
		}
		if len(v.Arguments) > 0 {
			p.printArgs(v.Arguments)
		} else {
			p.emit("()")
		}
	case *ast.UnaryExpression:
		p.emit(v.Operator)
		if len(v.Operator) > 1 {
			p.sb.WriteByte(' ')
		}
		p.printExpr(v.Argument, precUnary)
	case *ast.UpdateExpression:
		if v.Prefix {
			p.emit(v.Operator)
			p.printExpr(v.Argument, precUnary)
		} else {
			p.printExpr(v.Argument, precPostfix)
			p.emit(v.Operator)
		}
	case *ast.BinaryExpression:
		prec := binPrec[v.Operator]
		leftMin, rightMin := prec, prec+1
		if v.Operator == "**" {
			leftMin, rightMin = prec+1, prec
		}
		p.printExpr(v.Left, leftMin)
		p.printBinOp(v.Operator)
		p.printExpr(v.Right, rightMin)
	case *ast.LogicalExpression:
		prec := binPrec[v.Operator]
		p.printExpr(v.Left, prec)
		p.printBinOp(v.Operator)
		p.printExpr(v.Right, prec+1)
	case *ast.AssignmentExpression:
		p.printExpr(v.Left, precPostfix)
		p.space()
		p.emit(v.Operator)
		p.space()
		p.printExpr(v.Right, precAssignment)
	case *ast.ConditionalExpression:
		p.printExpr(v.Test, precConditional+1)
		p.space()
		p.emit("?")
		p.space()
		p.printExpr(v.Consequent, precAssignment)
		p.space()
		p.emit(":")
		p.space()
		p.printExpr(v.Alternate, precAssignment)
	case *ast.SequenceExpression:
		for i, e := range v.Expressions {
			if i > 0 {
				p.emit(",")
				p.space()
			}
			p.printExpr(e, precAssignment)
		}
	case *ast.YieldExpression:
		p.emit("yield")
		if v.Delegate {
			p.emit("*")
		}
		if v.Argument != nil {
			p.sb.WriteByte(' ')
			p.printExpr(v.Argument, precAssignment)
		}
	case *ast.AwaitExpression:
		p.emit("await")
		p.sb.WriteByte(' ')
		p.printExpr(v.Argument, precUnary)
	case *ast.RestElement:
		p.emit("...")
		p.printExpr(v.Argument, precAssignment)
	case *ast.AssignmentPattern:
		p.printExpr(v.Left, precPostfix)
		p.space()
		p.emit("=")
		p.space()
		p.printExpr(v.Right, precAssignment)
	case *ast.ArrayPattern:
		p.emit("[")
		for i, el := range v.Elements {
			if i > 0 {
				p.emit(",")
				p.space()
			}
			if el == nil {
				continue
			}
			p.printExpr(el, precAssignment)
		}
		p.emit("]")
	case *ast.ObjectPattern:
		p.printObject(v.Properties)
	default:
		// Defensive: unknown nodes print nothing rather than panicking.
	}
}

func (p *printer) printBinOp(op string) {
	switch op {
	case "in", "instanceof":
		p.sb.WriteByte(' ')
		p.emit(op)
		p.sb.WriteByte(' ')
	default:
		p.space()
		p.emit(op)
		p.space()
	}
}

func calleeContainsCall(n ast.Node) bool {
	for {
		switch v := n.(type) {
		case *ast.CallExpression:
			return true
		case *ast.MemberExpression:
			n = v.Object
		case *ast.TaggedTemplateExpression:
			n = v.Tag
		default:
			return false
		}
	}
}

func (p *printer) printObject(props []ast.Node) {
	if len(props) == 0 {
		p.emit("{}")
		return
	}
	p.emit("{")
	if !p.opts.Minify {
		p.indent++
	}
	for i, prop := range props {
		if i > 0 {
			p.emit(",")
		}
		p.nlOrNothing()
		p.printExpr(prop, precAssignment)
	}
	if !p.opts.Minify {
		p.indent--
	}
	p.nlOrNothing()
	p.emit("}")
}

func (p *printer) nlOrNothing() {
	if !p.opts.Minify {
		p.nl()
	}
}

func (p *printer) printProperty(v *ast.Property) {
	if v.Kind == "get" || v.Kind == "set" {
		p.emit(v.Kind)
		p.sb.WriteByte(' ')
		p.printKey(v.Key, v.Computed)
		fn := v.Value.(*ast.FunctionExpression)
		p.printParams(fn.Params)
		p.space()
		p.printBlock(fn.Body)
		return
	}
	if v.Method {
		fn := v.Value.(*ast.FunctionExpression)
		if fn.Async {
			p.emit("async")
			p.sb.WriteByte(' ')
		}
		if fn.Generator {
			p.emit("*")
		}
		p.printKey(v.Key, v.Computed)
		p.printParams(fn.Params)
		p.space()
		p.printBlock(fn.Body)
		return
	}
	if v.Shorthand {
		p.printExpr(v.Value, precAssignment)
		return
	}
	p.printKey(v.Key, v.Computed)
	p.emit(":")
	p.space()
	p.printExpr(v.Value, precAssignment)
}

func (p *printer) printKey(key ast.Node, computed bool) {
	if computed {
		p.emit("[")
		p.printExpr(key, precAssignment)
		p.emit("]")
		return
	}
	p.printExpr(key, precPrimary)
}

func (p *printer) printMember(v *ast.MemberExpression) {
	// Number literals need either parens or a space before `.`.
	if lit, ok := v.Object.(*ast.Literal); ok && lit.Kind == ast.LiteralNumber && !v.Computed {
		p.emit("(")
		p.printLiteral(lit)
		p.emit(")")
	} else {
		p.printExpr(v.Object, precCall)
	}
	if v.Computed {
		if v.Optional {
			p.emit("?.")
		}
		p.emit("[")
		p.printExpr(v.Property, precSequence)
		p.emit("]")
		return
	}
	if v.Optional {
		p.emit("?.")
	} else {
		p.emit(".")
	}
	p.printExpr(v.Property, precPrimary)
}

func (p *printer) printArgs(args []ast.Node) {
	p.emit("(")
	for i, a := range args {
		if i > 0 {
			p.emit(",")
			p.space()
		}
		p.printExpr(a, precAssignment)
	}
	p.emit(")")
}

func (p *printer) printParams(params []ast.Node) {
	p.emit("(")
	for i, param := range params {
		if i > 0 {
			p.emit(",")
			p.space()
		}
		p.printExpr(param, precAssignment)
	}
	p.emit(")")
}

func (p *printer) printFunction(kw string, id *ast.Identifier, params []ast.Node, body *ast.BlockStatement, gen, async bool) {
	if async {
		p.emit("async")
		p.sb.WriteByte(' ')
	}
	p.emit(kw)
	if gen {
		p.emit("*")
	}
	if id != nil {
		p.sb.WriteByte(' ')
		p.emit(id.Name)
	}
	p.printParams(params)
	p.space()
	p.printBlock(body)
}

func (p *printer) printArrow(v *ast.ArrowFunctionExpression) {
	if v.Async {
		p.emit("async")
		p.sb.WriteByte(' ')
	}
	if len(v.Params) == 1 {
		if id, ok := v.Params[0].(*ast.Identifier); ok {
			p.emit(id.Name)
		} else {
			p.printParams(v.Params)
		}
	} else {
		p.printParams(v.Params)
	}
	p.space()
	p.emit("=>")
	p.space()
	if blk, ok := v.Body.(*ast.BlockStatement); ok {
		p.printBlock(blk)
		return
	}
	// An expression body starting with `{` needs parens.
	if _, ok := v.Body.(*ast.ObjectExpression); ok {
		p.emit("(")
		p.printExpr(v.Body, precAssignment)
		p.emit(")")
		return
	}
	p.printExpr(v.Body, precAssignment)
}

func (p *printer) printClass(id *ast.Identifier, super ast.Node, body *ast.ClassBody) {
	p.emit("class")
	if id != nil {
		p.sb.WriteByte(' ')
		p.emit(id.Name)
	}
	if super != nil {
		p.sb.WriteByte(' ')
		p.emit("extends")
		p.sb.WriteByte(' ')
		p.printExpr(super, precMember)
	}
	p.space()
	p.emit("{")
	p.indent++
	for _, member := range body.Body {
		p.nl()
		switch m := member.(type) {
		case *ast.MethodDefinition:
			p.printMethod(m)
		case *ast.PropertyDefinition:
			p.printClassField(m)
		}
	}
	p.indent--
	p.nl()
	p.emit("}")
}

func (p *printer) printClassField(f *ast.PropertyDefinition) {
	if f.Static {
		p.emit("static")
		p.sb.WriteByte(' ')
	}
	p.printKey(f.Key, f.Computed)
	if f.Value != nil {
		p.space()
		p.emit("=")
		p.space()
		p.printExpr(f.Value, precAssignment)
	}
	p.emit(";")
}

func (p *printer) printMethod(m *ast.MethodDefinition) {
	if m.Static {
		p.emit("static")
		p.sb.WriteByte(' ')
	}
	fn := m.Value
	if fn.Async {
		p.emit("async")
		p.sb.WriteByte(' ')
	}
	if fn.Generator {
		p.emit("*")
	}
	if m.Kind == "get" || m.Kind == "set" {
		p.emit(m.Kind)
		p.sb.WriteByte(' ')
	}
	p.printKey(m.Key, m.Computed)
	p.printParams(fn.Params)
	p.space()
	p.printBlock(fn.Body)
}

func (p *printer) printTemplate(t *ast.TemplateLiteral) {
	p.emit("`")
	for i, q := range t.Quasis {
		p.sb.WriteString(escapeTemplate(q.Cooked))
		if i < len(t.Expressions) {
			p.sb.WriteString("${")
			p.printExpr(t.Expressions[i], precSequence)
			p.sb.WriteString("}")
		}
	}
	p.sb.WriteString("`")
}

func escapeTemplate(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '`':
			sb.WriteString("\\`")
		case '\\':
			sb.WriteString("\\\\")
		case '$':
			sb.WriteString("\\$")
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func (p *printer) printLiteral(v *ast.Literal) {
	switch v.Kind {
	case ast.LiteralString:
		p.emit(QuoteString(v.String))
	case ast.LiteralNumber:
		p.emit(FormatNumber(v.Number))
	case ast.LiteralBoolean:
		if v.Bool {
			p.emit("true")
		} else {
			p.emit("false")
		}
	case ast.LiteralNull:
		p.emit("null")
	case ast.LiteralRegExp:
		p.emit("/" + v.Regex.Pattern + "/" + v.Regex.Flags)
	}
}

// FormatNumber renders a float as a valid, compact JavaScript numeric
// literal.
func FormatNumber(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Go writes 1e+06; JavaScript wants 1e6.
	s = strings.ReplaceAll(s, "e+0", "e")
	s = strings.ReplaceAll(s, "e+", "e")
	s = strings.ReplaceAll(s, "e-0", "e-")
	return s
}

// QuoteString renders s as a JavaScript string literal, choosing the quote
// character that minimizes escaping.
func QuoteString(s string) string {
	quote := byte('"')
	if strings.Contains(s, `"`) && !strings.Contains(s, "'") {
		quote = '\''
	}
	var sb strings.Builder
	sb.WriteByte(quote)
	runes := []rune(s)
	for i, r := range runes {
		switch r {
		case rune(quote):
			sb.WriteByte('\\')
			sb.WriteRune(r)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		case '\b':
			sb.WriteString(`\b`)
		case '\f':
			sb.WriteString(`\f`)
		case '\v':
			sb.WriteString(`\v`)
		case 0:
			// `\0` followed by a digit would re-lex as an octal escape.
			if i+1 < len(runes) && runes[i+1] >= '0' && runes[i+1] <= '9' {
				sb.WriteString(`\x00`)
			} else {
				sb.WriteString(`\0`)
			}
		case '\u2028':
			sb.WriteString(`\u2028`)
		case '\u2029':
			sb.WriteString(`\u2029`)
		default:
			if r < 0x20 {
				sb.WriteString(`\x`)
				const hexDigits = "0123456789abcdef"
				sb.WriteByte(hexDigits[r>>4])
				sb.WriteByte(hexDigits[r&0xf])
			} else {
				sb.WriteRune(r)
			}
		}
	}
	sb.WriteByte(quote)
	return sb.String()
}
