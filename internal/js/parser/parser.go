// Package parser implements a recursive-descent JavaScript parser producing
// the Esprima-compatible AST from internal/js/ast. It covers ES5 plus the
// ES2015+ constructs that appear in real-world transformed code: let/const,
// arrow functions, classes, template literals, destructuring patterns,
// default/rest parameters, spread, for-of, async/await, optional chaining,
// and exponentiation. Automatic semicolon insertion follows the standard
// rules, including the restricted productions.
package parser

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/js/ast"
	"repro/internal/js/lexer"
	"repro/internal/obs"
)

// parses counts completed parse attempts (successful or not) process-wide.
// The batch scanner's tests read it through Parses to assert that a scan
// touches each input exactly once, even when classification, explanation,
// and feature extraction all consume the same file.
var parses atomic.Int64

// Parses returns the number of parse attempts since process start. It is a
// test hook for parse-once assertions, not a performance counter.
func Parses() int64 { return parses.Load() }

// Error is a parse error with a source position.
type Error struct {
	Pos ast.Pos
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at line %d col %d: %s", e.Pos.Line, e.Pos.Column, e.Msg)
}

// Result bundles the AST with the lexical information gathered while parsing,
// which the feature extractor consumes (tokens and comments mirror the
// Esprima token collection in the paper's pipeline). Every AST node hangs
// off the arena embedded in the Result, so the whole tree dies with it;
// nothing may retain node pointers past the Result they came from.
type Result struct {
	Program *ast.Program
	// Tokens holds every lexical unit, in order. It is nil when parsing
	// with ParseNoTokens; NumTokens is filled either way.
	Tokens    []lexer.Token
	NumTokens int
	Comments  []lexer.Comment

	// Kinds is the pre-order stream of interned node kinds, recorded while
	// stamping dense NodeIDs onto the tree (Program.NodeCount is set by the
	// same walk). The n-gram extractor consumes it directly instead of
	// re-walking the tree; the stream is bit-identical to a fresh EachChild
	// pre-order walk. It is owned by the Result.
	Kinds []uint16

	// arena owns the storage of every node reachable from Program. It
	// lives in the Result (not the reusable parser) so a pooled parser
	// cannot hand one file's nodes to the next.
	arena ast.Arena
}

// Session is a reusable parser. A Session parses one file at a time and
// recycles its token buffer, lexer state, comment buffer, and arrow-head
// memo table across parses — a scanner worker that parses many files
// should hold one Session instead of paying the warm-up allocations per
// file. The zero value is ready to use; Sessions are not safe for
// concurrent use.
type Session struct {
	p parser
}

// NewSession returns an empty parser session.
func NewSession() *Session { return &Session{} }

// Parse parses JavaScript source text, collecting all tokens.
func (s *Session) Parse(src string) (*Result, error) { return s.p.parse(src, true, true) }

// ParseNoTokens parses without materializing the token slice. The feature
// pipeline uses it: on megabyte-scale minified or JSFuck inputs, storing
// every token costs more than parsing itself, and the features only need
// the token count and the comments.
func (s *Session) ParseNoTokens(src string) (*Result, error) { return s.p.parse(src, false, true) }

// sessions recycles parser state for the package-level entry points, so
// one-shot callers still amortize parser warm-up across files.
var sessions = sync.Pool{New: func() any { return NewSession() }}

// Parse parses JavaScript source text, collecting all tokens.
func Parse(src string) (*Result, error) {
	s := sessions.Get().(*Session)
	defer sessions.Put(s)
	return s.Parse(src)
}

// ParseNoTokens parses without materializing the token slice; see
// Session.ParseNoTokens.
func ParseNoTokens(src string) (*Result, error) {
	s := sessions.Get().(*Session)
	defer sessions.Put(s)
	return s.ParseNoTokens(src)
}

// reset re-arms the parser for a new file. This is the hard reset contract
// behind Session reuse: every piece of per-file state is cleared here (the
// token buffer, memo table, and comment buffer keep their capacity but not
// their contents), and the arena is never reused — it belongs to the
// previous Result.
func (p *parser) reset(src string, collectTokens bool) {
	p.lex.Reset(src)
	p.src = src
	p.tok = lexer.Token{}
	p.collect = collectTokens
	p.tokens = p.tokens[:0]
	p.numTokens = 0
	p.lastEnd_ = ast.Pos{}
	p.depth = 0
	clear(p.arrowFail)
	p.arena = nil
}

func (p *parser) parse(src string, collectTokens, collectKinds bool) (res *Result, err error) {
	parses.Add(1)
	p.reset(src, collectTokens)
	out := &Result{}
	p.arena = &out.arena
	if obs.Enabled() {
		stop := obs.Time("parse.duration")
		defer func() {
			stop()
			obs.Add("parse.files", 1)
			obs.Add("parse.bytes", int64(len(src)))
			obs.Observe("parse.file_bytes", obs.UnitBytes, int64(len(src)))
			obs.Add("lex.tokens", int64(p.lex.TokensScanned()))
			obs.Add("lex.comments", int64(len(p.lex.Comments())))
			if err != nil {
				obs.Add("parse.errors", 1)
			} else {
				obs.Add("parse.tokens", int64(p.numTokens))
			}
			// Backtracking happens on failed parses too; recording the
			// re-scan count only on success would skew lexer metrics on
			// error-heavy corpora.
			if rescans := p.lex.TokensScanned() - p.numTokens; rescans > 0 {
				obs.Add("lex.tokens_rescanned", int64(rescans))
			}
		}()
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	out.Program = prog
	// Stamp dense pre-order NodeIDs and collect the kind stream in the same
	// walk. The arena's node count pre-sizes the stream exactly, so this is
	// one traversal and (when the caller keeps the Result, and so can feed
	// the stream to the feature extractor) one allocation per file;
	// ParseProgram-style callers that drop the Result skip the allocation
	// and get the stamping alone.
	if p.stamper == nil {
		p.stamper = ast.NewIDStamper()
	}
	if collectKinds {
		out.Kinds = p.stamper.Stamp(prog, make([]uint16, 0, out.arena.NodeCount()))
	} else {
		p.stamper.StampIDs(prog)
	}
	// The token and comment buffers belong to the reusable parser; the
	// Result must own its slices so the next parse cannot clobber them.
	if p.collect {
		out.Tokens = append([]lexer.Token(nil), p.tokens...)
	}
	out.NumTokens = p.numTokens
	out.Comments = append([]lexer.Comment(nil), p.lex.Comments()...)
	return out, nil
}

// ParseProgram parses source and returns only the AST root (tokens are not
// materialized, and neither is the kind stream — callers that drop the
// Result cannot use it).
func ParseProgram(src string) (*ast.Program, error) {
	s := sessions.Get().(*Session)
	defer sessions.Put(s)
	res, err := s.p.parse(src, false, false)
	if err != nil {
		return nil, err
	}
	return res.Program, nil
}

type parser struct {
	// lex is embedded by value so a Session is one object: resetting it
	// reuses the lexer's comment buffer in place.
	lex     lexer.Lexer
	src     string
	tok     lexer.Token
	collect bool
	tokens  []lexer.Token
	// numTokens counts consumed tokens even when collect is false.
	numTokens int
	// lastEnd is the end position of the last consumed token, for span
	// stamping.
	lastEnd_ ast.Pos

	// depth guards against stack exhaustion on pathological nesting.
	depth int

	// arrowFail records byte offsets where a `(`-led arrow-head attempt
	// already failed, so backtracking retries skip the re-attempt (keeps
	// nested cover-grammar input from going exponential).
	arrowFail map[int]bool

	// arena allocates every AST node of the current parse. It points into
	// the Result under construction and is never pooled: a fresh parse
	// gets a fresh arena so earlier Results keep sole ownership of their
	// nodes.
	arena *ast.Arena

	// stamper assigns dense pre-order NodeIDs after a successful parse. It
	// is reused across files (its pre-bound visit hook is the only state)
	// and retains nothing between parses.
	stamper *ast.IDStamper
}

const maxDepth = 2500

func (p *parser) next() error {
	if p.tok.Kind != 0 {
		p.numTokens++
		p.lastEnd_ = p.tok.End
		if p.collect {
			p.tokens = append(p.tokens, p.tok)
		}
	}
	// NextInto writes the new token straight into p.tok — the lexer and
	// parser share the one Token slot, so no ~130-byte struct is copied
	// per token.
	return p.lex.NextInto(&p.tok)
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.tok.Start, Msg: fmt.Sprintf(format, args...)}
}

// at, atPunct, and atKeyword test fields on p.tok directly rather than
// going through the Token value-receiver helpers, which would copy the
// whole ~130-byte struct on every probe.
func (p *parser) at(kind lexer.Kind) bool { return p.tok.Kind == kind }
func (p *parser) atPunct(s string) bool {
	return p.tok.Kind == lexer.Punct && p.tok.Lexeme == s
}
func (p *parser) atKeyword(s string) bool {
	return p.tok.Kind == lexer.Keyword && p.tok.StringValue == s
}
func (p *parser) atIdentName(s string) bool {
	return p.tok.Kind == lexer.Ident && p.tok.StringValue == s
}

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return p.errorf("expected %q, found %q", s, p.tok.Lexeme)
	}
	return p.next()
}

func (p *parser) expectKeyword(s string) error {
	if !p.atKeyword(s) {
		return p.errorf("expected keyword %q, found %q", s, p.tok.Lexeme)
	}
	return p.next()
}

func (p *parser) eatPunct(s string) (bool, error) {
	if p.atPunct(s) {
		return true, p.next()
	}
	return false, nil
}

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxDepth {
		return p.errorf("nesting too deep")
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func span(start ast.Pos, end ast.Pos) ast.Span { return ast.Span{Start: start, End: end} }

type spanSetter interface{ SetSpan(ast.Span) }

// finish stamps the node's source range and hands it back. It is generic
// over the concrete node type: the old signature took an ast.Node and
// asserted to spanSetter, which cost an interface-to-interface itab
// lookup on every node built (visible on the parse profile). Every
// concrete node embeds ast.base, so the constraint is always satisfied.
//
//jslint:hotpath
func finish[T spanSetter](p *parser, n T, start ast.Pos) T {
	n.SetSpan(span(start, p.lastEnd()))
	return n
}

func (p *parser) lastEnd() ast.Pos {
	if p.numTokens > 0 {
		return p.lastEnd_
	}
	return p.tok.Start
}

// identHere builds an Identifier spanning the current token. It must be
// called before that token is consumed, so the rules and diagnostics always
// see a real source range (position fidelity: no zero-span nodes).
func (p *parser) identHere(name string) *ast.Identifier {
	id := p.arena.NewIdentifier(ast.Identifier{Name: name})
	id.SetSpan(span(p.tok.Start, p.tok.End))
	return id
}

// stringLitHere builds a string Literal spanning the current token. Like
// identHere, it must be called before the token is consumed.
func (p *parser) stringLitHere() *ast.Literal {
	lit := p.arena.NewLiteral(ast.Literal{Kind: ast.LiteralString, Raw: p.tok.Lexeme, String: p.tok.StringValue})
	lit.SetSpan(span(p.tok.Start, p.tok.End))
	return lit
}

// cloneIdent copies an identifier including its span (used where patterns
// reuse a parsed name, e.g. shorthand object properties).
func (p *parser) cloneIdent(id *ast.Identifier) *ast.Identifier {
	c := p.arena.NewIdentifier(ast.Identifier{Name: id.Name})
	c.SetSpan(id.Span())
	return c
}

// ---------------------------------------------------------------------------
// Program and statements
// ---------------------------------------------------------------------------

func (p *parser) parseProgram() (*ast.Program, error) {
	start := p.tok.Start
	prog := p.arena.NewProgram(ast.Program{})
	body, err := p.parseStatementList(true)
	if err != nil {
		return nil, err
	}
	prog.Body = body
	finish(p, prog, start)
	return prog, nil
}

// parseStatementList parses statements until EOF (top) or '}'.
func (p *parser) parseStatementList(top bool) ([]ast.Node, error) {
	var body []ast.Node
	directives := true
	for {
		if p.at(lexer.EOF) {
			if top {
				return body, nil
			}
			return nil, p.errorf("unexpected end of input")
		}
		if !top && p.atPunct("}") {
			return body, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if directives {
			if es, ok := stmt.(*ast.ExpressionStatement); ok {
				if lit, ok := es.Expression.(*ast.Literal); ok && lit.Kind == ast.LiteralString {
					es.Directive = lit.String
				} else {
					directives = false
				}
			} else {
				directives = false
			}
		}
		body = append(body, stmt)
	}
}

func (p *parser) parseStatement() (ast.Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()

	start := p.tok.Start
	switch {
	case p.atPunct("{"):
		return p.parseBlock()
	case p.atPunct(";"):
		if err := p.next(); err != nil {
			return nil, err
		}
		return finish(p, p.arena.NewEmptyStatement(ast.EmptyStatement{}), start), nil
	case p.atKeyword("var"), p.atKeyword("let"), p.atKeyword("const"):
		decl, err := p.parseVariableDeclaration(true)
		if err != nil {
			return nil, err
		}
		return decl, nil
	case p.atKeyword("function"):
		return p.parseFunctionDeclaration(false)
	case p.atKeyword("class"):
		return p.parseClassDeclaration()
	case p.atKeyword("if"):
		return p.parseIf()
	case p.atKeyword("for"):
		return p.parseFor()
	case p.atKeyword("while"):
		return p.parseWhile()
	case p.atKeyword("do"):
		return p.parseDoWhile()
	case p.atKeyword("switch"):
		return p.parseSwitch()
	case p.atKeyword("return"):
		return p.parseReturn()
	case p.atKeyword("throw"):
		return p.parseThrow()
	case p.atKeyword("try"):
		return p.parseTry()
	case p.atKeyword("break"):
		return p.parseBreakContinue(true)
	case p.atKeyword("continue"):
		return p.parseBreakContinue(false)
	case p.atKeyword("debugger"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.consumeSemicolon(); err != nil {
			return nil, err
		}
		return finish(p, p.arena.NewDebuggerStatement(ast.DebuggerStatement{}), start), nil
	case p.atKeyword("with"):
		return p.parseWith()
	case p.atKeyword("import"):
		return p.parseImport()
	case p.atKeyword("export"):
		return p.parseExport()
	case p.atIdentName("async"):
		// `async function` declaration; otherwise fall through to expression.
		save := p.save()
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.atKeyword("function") && !p.tok.NewlineBefore {
			fn, err := p.parseFunctionDeclaration(true)
			if err != nil {
				return nil, err
			}
			finish(p, fn, start)
			return fn, nil
		}
		p.restore(save)
		return p.parseExpressionStatement()
	case p.at(lexer.Ident):
		// Possible labeled statement: `ident :`.
		save := p.save()
		name := p.identHere(p.tok.StringValue)
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.atPunct(":") {
			if err := p.next(); err != nil {
				return nil, err
			}
			body, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			lbl := p.arena.NewLabeledStatement(ast.LabeledStatement{Label: name, Body: body})
			return finish(p, lbl, start), nil
		}
		p.restore(save)
		return p.parseExpressionStatement()
	default:
		return p.parseExpressionStatement()
	}
}

func (p *parser) parseBlock() (*ast.BlockStatement, error) {
	start := p.tok.Start
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	body, err := p.parseStatementList(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	blk := p.arena.NewBlockStatement(ast.BlockStatement{Body: body})
	finish(p, blk, start)
	return blk, nil
}

func (p *parser) parseExpressionStatement() (ast.Node, error) {
	start := p.tok.Start
	expr, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return finish(p, p.arena.NewExpressionStatement(ast.ExpressionStatement{Expression: expr}), start), nil
}

// consumeSemicolon applies automatic semicolon insertion.
func (p *parser) consumeSemicolon() error {
	if p.atPunct(";") {
		return p.next()
	}
	if p.atPunct("}") || p.at(lexer.EOF) || p.tok.NewlineBefore {
		return nil
	}
	return p.errorf("missing semicolon before %q", p.tok.Lexeme)
}

func (p *parser) parseVariableDeclaration(consumeSemi bool) (*ast.VariableDeclaration, error) {
	start := p.tok.Start
	kind := p.tok.StringValue
	if err := p.next(); err != nil {
		return nil, err
	}
	decl := p.arena.NewVariableDeclaration(ast.VariableDeclaration{Kind: kind})
	for {
		dStart := p.tok.Start
		id, err := p.parseBindingTarget()
		if err != nil {
			return nil, err
		}
		d := p.arena.NewVariableDeclarator(ast.VariableDeclarator{ID: id})
		if ok, err := p.eatPunct("="); err != nil {
			return nil, err
		} else if ok {
			init, err := p.parseAssignment(false)
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		finish(p, d, dStart)
		decl.Declarations = append(decl.Declarations, d)
		if ok, err := p.eatPunct(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if consumeSemi {
		if err := p.consumeSemicolon(); err != nil {
			return nil, err
		}
	}
	finish(p, decl, start)
	return decl, nil
}

func (p *parser) parseIf() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("if"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	test, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	cons, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	stmt := p.arena.NewIfStatement(ast.IfStatement{Test: test, Consequent: cons})
	if p.atKeyword("else") {
		if err := p.next(); err != nil {
			return nil, err
		}
		alt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmt.Alternate = alt
	}
	return finish(p, stmt, start), nil
}

func (p *parser) parseWhile() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("while"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	test, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return finish(p, p.arena.NewWhileStatement(ast.WhileStatement{Test: test, Body: body}), start), nil
}

func (p *parser) parseDoWhile() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("do"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("while"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	test, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	// The semicolon after do-while is always optional.
	if _, err := p.eatPunct(";"); err != nil {
		return nil, err
	}
	return finish(p, p.arena.NewDoWhileStatement(ast.DoWhileStatement{Body: body, Test: test}), start), nil
}

func (p *parser) parseFor() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("for"); err != nil {
		return nil, err
	}
	isAwait := false
	if p.atKeyword("await") {
		isAwait = true
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}

	var init ast.Node
	switch {
	case p.atPunct(";"):
		// no init
	case p.atKeyword("var"), p.atKeyword("let"), p.atKeyword("const"):
		decl, err := p.parseForDeclaration()
		if err != nil {
			return nil, err
		}
		init = decl
	default:
		expr, err := p.parseExpression(true)
		if err != nil {
			return nil, err
		}
		init = expr
	}

	if p.atKeyword("in") {
		if err := p.next(); err != nil {
			return nil, err
		}
		left, err := p.forTarget(init)
		if err != nil {
			return nil, err
		}
		right, err := p.parseExpression(false)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return finish(p, p.arena.NewForInStatement(ast.ForInStatement{Left: left, Right: right, Body: body}), start), nil
	}
	if p.atIdentName("of") {
		if err := p.next(); err != nil {
			return nil, err
		}
		left, err := p.forTarget(init)
		if err != nil {
			return nil, err
		}
		right, err := p.parseAssignment(false)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return finish(p, p.arena.NewForOfStatement(ast.ForOfStatement{Left: left, Right: right, Body: body, Await: isAwait}), start), nil
	}

	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	var test, update ast.Node
	if !p.atPunct(";") {
		t, err := p.parseExpression(false)
		if err != nil {
			return nil, err
		}
		test = t
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		u, err := p.parseExpression(false)
		if err != nil {
			return nil, err
		}
		update = u
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return finish(p, p.arena.NewForStatement(ast.ForStatement{Init: init, Test: test, Update: update, Body: body}), start), nil
}

// parseForDeclaration parses `var/let/const target [= init]` without
// consuming a semicolon, stopping before `in`/`of` when appropriate.
func (p *parser) parseForDeclaration() (*ast.VariableDeclaration, error) {
	start := p.tok.Start
	kind := p.tok.StringValue
	if err := p.next(); err != nil {
		return nil, err
	}
	decl := p.arena.NewVariableDeclaration(ast.VariableDeclaration{Kind: kind})
	for {
		dStart := p.tok.Start
		id, err := p.parseBindingTarget()
		if err != nil {
			return nil, err
		}
		d := p.arena.NewVariableDeclarator(ast.VariableDeclarator{ID: id})
		if ok, err := p.eatPunct("="); err != nil {
			return nil, err
		} else if ok {
			init, err := p.parseAssignmentNoIn()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		finish(p, d, dStart)
		decl.Declarations = append(decl.Declarations, d)
		if ok, err := p.eatPunct(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	finish(p, decl, start)
	return decl, nil
}

// forTarget validates/converts the pre-`in`/`of` part of a for statement.
func (p *parser) forTarget(init ast.Node) (ast.Node, error) {
	if init == nil {
		return nil, p.errorf("missing loop variable")
	}
	if decl, ok := init.(*ast.VariableDeclaration); ok {
		return decl, nil
	}
	return p.toPattern(init)
}

func (p *parser) parseSwitch() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("switch"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	disc, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	sw := p.arena.NewSwitchStatement(ast.SwitchStatement{Discriminant: disc})
	for !p.atPunct("}") {
		cStart := p.tok.Start
		c := p.arena.NewSwitchCase(ast.SwitchCase{})
		if p.atKeyword("case") {
			if err := p.next(); err != nil {
				return nil, err
			}
			test, err := p.parseExpression(false)
			if err != nil {
				return nil, err
			}
			c.Test = test
		} else if p.atKeyword("default") {
			if err := p.next(); err != nil {
				return nil, err
			}
		} else {
			return nil, p.errorf("expected case or default, found %q", p.tok.Lexeme)
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		for !p.atPunct("}") && !p.atKeyword("case") && !p.atKeyword("default") {
			stmt, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			c.Consequent = append(c.Consequent, stmt)
		}
		finish(p, c, cStart)
		sw.Cases = append(sw.Cases, c)
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return finish(p, sw, start), nil
}

func (p *parser) parseReturn() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("return"); err != nil {
		return nil, err
	}
	ret := p.arena.NewReturnStatement(ast.ReturnStatement{})
	// Restricted production: a newline after `return` terminates it.
	if !p.tok.NewlineBefore && !p.atPunct(";") && !p.atPunct("}") && !p.at(lexer.EOF) {
		arg, err := p.parseExpression(false)
		if err != nil {
			return nil, err
		}
		ret.Argument = arg
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return finish(p, ret, start), nil
}

func (p *parser) parseThrow() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("throw"); err != nil {
		return nil, err
	}
	if p.tok.NewlineBefore {
		return nil, p.errorf("newline not allowed after throw")
	}
	arg, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return finish(p, p.arena.NewThrowStatement(ast.ThrowStatement{Argument: arg}), start), nil
}

func (p *parser) parseTry() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("try"); err != nil {
		return nil, err
	}
	block, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	stmt := p.arena.NewTryStatement(ast.TryStatement{Block: block})
	if p.atKeyword("catch") {
		cStart := p.tok.Start
		if err := p.next(); err != nil {
			return nil, err
		}
		clause := p.arena.NewCatchClause(ast.CatchClause{})
		if ok, err := p.eatPunct("("); err != nil {
			return nil, err
		} else if ok {
			param, err := p.parseBindingTarget()
			if err != nil {
				return nil, err
			}
			clause.Param = param
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		clause.Body = body
		finish(p, clause, cStart)
		stmt.Handler = clause
	}
	if p.atKeyword("finally") {
		if err := p.next(); err != nil {
			return nil, err
		}
		fin, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		stmt.Finalizer = fin
	}
	if stmt.Handler == nil && stmt.Finalizer == nil {
		return nil, p.errorf("try needs catch or finally")
	}
	return finish(p, stmt, start), nil
}

func (p *parser) parseBreakContinue(isBreak bool) (ast.Node, error) {
	start := p.tok.Start
	if err := p.next(); err != nil {
		return nil, err
	}
	var label *ast.Identifier
	if p.at(lexer.Ident) && !p.tok.NewlineBefore {
		label = p.identHere(p.tok.StringValue)
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	if isBreak {
		return finish(p, p.arena.NewBreakStatement(ast.BreakStatement{Label: label}), start), nil
	}
	return finish(p, p.arena.NewContinueStatement(ast.ContinueStatement{Label: label}), start), nil
}

func (p *parser) parseWith() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("with"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	obj, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return finish(p, p.arena.NewWithStatement(ast.WithStatement{Object: obj, Body: body}), start), nil
}
