package parser

import (
	"testing"

	"repro/internal/js/printer"
)

// FuzzParse checks the parser never panics and that anything it accepts
// round-trips through the printer to a fixed point.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`var x = 1;`,
		`function f(a, b) { return a + b; }`,
		`x = a ? b : c;`,
		"x = `tpl ${a + 1} end`;",
		`class A extends B { m() { super.m(); } #f = 1; }`,
		`for (const [k, v] of pairs) log(k, v);`,
		`x = /re[/]/g;`,
		`({a = 1, ...rest} = obj);`,
		`async () => await p;`,
		`l: while (true) { break l; }`,
		`x = a?.b?.["c"]?.(1);`,
		"<!-- html comment\nvar y = 2;",
		`x = 0x1fn + 1_000;`,
		`try {} catch {} finally {}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseProgram(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		out := printer.Compact(prog)
		prog2, err := ParseProgram(out)
		if err != nil {
			t.Fatalf("printer output does not reparse: %v\ninput: %q\nprinted: %q", err, src, out)
		}
		out2 := printer.Compact(prog2)
		if out != out2 {
			t.Fatalf("print not a fixed point:\ninput: %q\n1st: %q\n2nd: %q", src, out, out2)
		}
	})
}
