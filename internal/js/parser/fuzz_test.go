package parser

import (
	"testing"

	"repro/internal/js/parser/refspec"
	"repro/internal/js/printer"
)

// FuzzParse checks the parser never panics, that anything it accepts
// round-trips through the printer to a fixed point, and that the arena
// parser agrees with the refspec snapshot of the pre-arena parser on every
// input the fuzzer invents.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`var x = 1;`,
		`function f(a, b) { return a + b; }`,
		`x = a ? b : c;`,
		"x = `tpl ${a + 1} end`;",
		`class A extends B { m() { super.m(); } #f = 1; }`,
		`for (const [k, v] of pairs) log(k, v);`,
		`x = /re[/]/g;`,
		`({a = 1, ...rest} = obj);`,
		`async () => await p;`,
		`l: while (true) { break l; }`,
		`x = a?.b?.["c"]?.(1);`,
		"<!-- html comment\nvar y = 2;",
		`x = 0x1fn + 1_000;`,
		`try {} catch {} finally {}`,
	}
	// Escape-heavy seeds steer the fuzzer onto the lexer's slow paths,
	// where StringValue must own decoded memory instead of slicing the
	// source buffer. The backslashes are concatenated in ("\x5C") so the
	// escapes stay in the JavaScript text rather than being decoded by Go.
	const bs = "\x5C"
	seeds = append(seeds,
		"var "+bs+"u0041bc = "+bs+"u0041bc + 1;",
		"s = 'a"+bs+"u0041"+bs+"x42"+bs+"n"+bs+"0';",
		"s = \""+bs+"u{1F600}\";",
		"s = 'a"+bs+"\r\nb';",
		"t = `a\r\nb${1}c\rd`;",
		"s = 'x"+string(rune(0x2028))+"y';",
		"class E { #"+bs+"u0079 = 1; m() { return this.#"+bs+"u0079; } }",
		"s = 'a\xFFb';",
	)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseProgram(src)
		refProg, refErr := refspec.ParseProgram(src)
		if (err == nil) != (refErr == nil) {
			t.Fatalf("arena/reference disagree on acceptance: arena %v, reference %v\ninput: %q", err, refErr, src)
		}
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		out := printer.Compact(prog)
		if refOut := printer.Compact(refProg); refOut != out {
			t.Fatalf("arena tree diverges from reference:\ninput: %q\narena: %q\nreference: %q", src, out, refOut)
		}
		prog2, err := ParseProgram(out)
		if err != nil {
			t.Fatalf("printer output does not reparse: %v\ninput: %q\nprinted: %q", err, src, out)
		}
		out2 := printer.Compact(prog2)
		if out != out2 {
			t.Fatalf("print not a fixed point:\ninput: %q\n1st: %q\n2nd: %q", src, out, out2)
		}
	})
}
