package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// benchSource builds a representative mid-size script once.
func benchSource() string {
	rng := rand.New(rand.NewSource(1))
	var sb strings.Builder
	for sb.Len() < 16<<10 {
		switch rng.Intn(4) {
		case 0:
			sb.WriteString("function f")
			sb.WriteString(string(rune('a' + rng.Intn(26))))
			sb.WriteString("(a, b) { if (a > b) { return a - b; } return b - a; }\n")
		case 1:
			sb.WriteString("var table = [1, 2, 3, 4, 5].map(function (v) { return v * 2; });\n")
		case 2:
			sb.WriteString("for (var i = 0; i < 100; i++) { total += data[i].value; }\n")
		default:
			sb.WriteString("obj.method(\"string literal\", 42, {key: value, nested: {deep: true}});\n")
		}
	}
	return sb.String()
}

func BenchmarkParse(b *testing.B) {
	src := benchSource()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseNoTokens(b *testing.B) {
	src := benchSource()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseNoTokens(src); err != nil {
			b.Fatal(err)
		}
	}
}
