// Package refspec is a verbatim snapshot of the lexer and parser as they
// stood before the arena/zero-copy overhaul. It is the executable
// specification the differential golden tests compare the live parser
// against (same role as the old n-gram implementation kept by PR 5's golden
// vectors): both packages build ASTs out of the shared internal/js/ast
// types, so printer output, spans, and NodeKind streams can be compared
// node for node.
//
// Nothing outside tests may import this package. The snapshot drops the
// production instrumentation (obs metrics, the Parses counter) so that
// running the spec does not double-count pipeline metrics, but is otherwise
// byte-for-byte the old allocation behavior: every identifier and string
// materialized through a strings.Builder, one heap allocation per AST node.
package refspec

import (
	"fmt"

	"repro/internal/js/ast"
)

// parseError is a parse error with a source position.
type parseError struct {
	Pos ast.Pos
	Msg string
}

func (e *parseError) Error() string {
	return fmt.Sprintf("parse error at line %d col %d: %s", e.Pos.Line, e.Pos.Column, e.Msg)
}

// Result bundles the AST with the lexical information gathered while parsing,
// which the feature extractor consumes (tokens and comments mirror the
// Esprima token collection in the paper's pipeline).
type Result struct {
	Program *ast.Program
	// Tokens holds every lexical unit, in order. It is nil when parsing
	// with ParseNoTokens; NumTokens is filled either way.
	Tokens    []Token
	NumTokens int
	Comments  []Comment
}

// Parse parses JavaScript source text, collecting all tokens.
func Parse(src string) (*Result, error) {
	return parse(src, true)
}

// ParseNoTokens parses without materializing the token slice. The feature
// pipeline uses it: on megabyte-scale minified or JSFuck inputs, storing
// every token costs more than parsing itself, and the features only need
// the token count and the comments.
func ParseNoTokens(src string) (*Result, error) {
	return parse(src, false)
}

func parse(src string, collectTokens bool) (*Result, error) {
	p := &parser{lex: newLexer(src), src: src, collect: collectTokens}
	if err := p.next(); err != nil {
		return nil, err
	}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return &Result{
		Program:   prog,
		Tokens:    p.tokens,
		NumTokens: p.numTokens,
		Comments:  p.lex.Comments(),
	}, nil
}

// ParseProgram parses source and returns only the AST root (tokens are not
// materialized).
func ParseProgram(src string) (*ast.Program, error) {
	res, err := ParseNoTokens(src)
	if err != nil {
		return nil, err
	}
	return res.Program, nil
}

type parser struct {
	lex     *Lexer
	src     string
	tok     Token
	collect bool
	tokens  []Token
	// numTokens counts consumed tokens even when collect is false.
	numTokens int
	// lastEnd is the end position of the last consumed token, for span
	// stamping.
	lastEnd_ ast.Pos

	// depth guards against stack exhaustion on pathological nesting.
	depth int

	// arrowFail records byte offsets where a `(`-led arrow-head attempt
	// already failed, so backtracking retries skip the re-attempt (keeps
	// nested cover-grammar input from going exponential).
	arrowFail map[int]bool
}

const maxDepth = 2500

func (p *parser) next() error {
	tok, err := p.lex.Next()
	if err != nil {
		return err
	}
	if p.tok.Kind != 0 {
		p.numTokens++
		p.lastEnd_ = p.tok.End
		if p.collect {
			p.tokens = append(p.tokens, p.tok)
		}
	}
	p.tok = tok
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &parseError{Pos: p.tok.Start, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) at(kind Kind) bool           { return p.tok.Kind == kind }
func (p *parser) atPunct(s string) bool       { return p.tok.IsPunct(s) }
func (p *parser) atKeyword(s string) bool     { return p.tok.IsKeyword(s) }
func (p *parser) atIdentLexeme(s string) bool { return p.tok.Kind == Ident && p.tok.Lexeme == s }

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return p.errorf("expected %q, found %q", s, p.tok.Lexeme)
	}
	return p.next()
}

func (p *parser) expectKeyword(s string) error {
	if !p.atKeyword(s) {
		return p.errorf("expected keyword %q, found %q", s, p.tok.Lexeme)
	}
	return p.next()
}

func (p *parser) eatPunct(s string) (bool, error) {
	if p.atPunct(s) {
		return true, p.next()
	}
	return false, nil
}

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxDepth {
		return p.errorf("nesting too deep")
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func span(start ast.Pos, end ast.Pos) ast.Span { return ast.Span{Start: start, End: end} }

type spanSetter interface{ SetSpan(ast.Span) }

func (p *parser) finish(n ast.Node, start ast.Pos) ast.Node {
	if s, ok := n.(spanSetter); ok {
		s.SetSpan(span(start, p.lastEnd()))
	}
	return n
}

func (p *parser) lastEnd() ast.Pos {
	if p.numTokens > 0 {
		return p.lastEnd_
	}
	return p.tok.Start
}

// identHere builds an Identifier spanning the current token. It must be
// called before that token is consumed, so the rules and diagnostics always
// see a real source range (position fidelity: no zero-span nodes).
func (p *parser) identHere(name string) *ast.Identifier {
	id := ast.NewIdentifier(name)
	id.SetSpan(span(p.tok.Start, p.tok.End))
	return id
}

// stringLitHere builds a string Literal spanning the current token. Like
// identHere, it must be called before the token is consumed.
func (p *parser) stringLitHere() *ast.Literal {
	lit := &ast.Literal{Kind: ast.LiteralString, Raw: p.tok.Lexeme, String: p.tok.StringValue}
	lit.SetSpan(span(p.tok.Start, p.tok.End))
	return lit
}

// cloneIdent copies an identifier including its span (used where patterns
// reuse a parsed name, e.g. shorthand object properties).
func cloneIdent(id *ast.Identifier) *ast.Identifier {
	c := ast.NewIdentifier(id.Name)
	c.SetSpan(id.Span())
	return c
}

// ---------------------------------------------------------------------------
// Program and statements
// ---------------------------------------------------------------------------

func (p *parser) parseProgram() (*ast.Program, error) {
	start := p.tok.Start
	prog := &ast.Program{}
	body, err := p.parseStatementList(true)
	if err != nil {
		return nil, err
	}
	prog.Body = body
	p.finish(prog, start)
	return prog, nil
}

// parseStatementList parses statements until EOF (top) or '}'.
func (p *parser) parseStatementList(top bool) ([]ast.Node, error) {
	var body []ast.Node
	directives := true
	for {
		if p.at(EOF) {
			if top {
				return body, nil
			}
			return nil, p.errorf("unexpected end of input")
		}
		if !top && p.atPunct("}") {
			return body, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if directives {
			if es, ok := stmt.(*ast.ExpressionStatement); ok {
				if lit, ok := es.Expression.(*ast.Literal); ok && lit.Kind == ast.LiteralString {
					es.Directive = lit.String
				} else {
					directives = false
				}
			} else {
				directives = false
			}
		}
		body = append(body, stmt)
	}
}

func (p *parser) parseStatement() (ast.Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()

	start := p.tok.Start
	switch {
	case p.atPunct("{"):
		return p.parseBlock()
	case p.atPunct(";"):
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.finish(&ast.EmptyStatement{}, start), nil
	case p.atKeyword("var"), p.atKeyword("let"), p.atKeyword("const"):
		decl, err := p.parseVariableDeclaration(true)
		if err != nil {
			return nil, err
		}
		return decl, nil
	case p.atKeyword("function"):
		return p.parseFunctionDeclaration(false)
	case p.atKeyword("class"):
		return p.parseClassDeclaration()
	case p.atKeyword("if"):
		return p.parseIf()
	case p.atKeyword("for"):
		return p.parseFor()
	case p.atKeyword("while"):
		return p.parseWhile()
	case p.atKeyword("do"):
		return p.parseDoWhile()
	case p.atKeyword("switch"):
		return p.parseSwitch()
	case p.atKeyword("return"):
		return p.parseReturn()
	case p.atKeyword("throw"):
		return p.parseThrow()
	case p.atKeyword("try"):
		return p.parseTry()
	case p.atKeyword("break"):
		return p.parseBreakContinue(true)
	case p.atKeyword("continue"):
		return p.parseBreakContinue(false)
	case p.atKeyword("debugger"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.consumeSemicolon(); err != nil {
			return nil, err
		}
		return p.finish(&ast.DebuggerStatement{}, start), nil
	case p.atKeyword("with"):
		return p.parseWith()
	case p.atKeyword("import"):
		return p.parseImport()
	case p.atKeyword("export"):
		return p.parseExport()
	case p.atIdentLexeme("async"):
		// `async function` declaration; otherwise fall through to expression.
		save := p.save()
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.atKeyword("function") && !p.tok.NewlineBefore {
			fn, err := p.parseFunctionDeclaration(true)
			if err != nil {
				return nil, err
			}
			p.finish(fn, start)
			return fn, nil
		}
		p.restore(save)
		return p.parseExpressionStatement()
	case p.at(Ident):
		// Possible labeled statement: `ident :`.
		save := p.save()
		name := p.identHere(p.tok.Lexeme)
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.atPunct(":") {
			if err := p.next(); err != nil {
				return nil, err
			}
			body, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			lbl := &ast.LabeledStatement{Label: name, Body: body}
			return p.finish(lbl, start), nil
		}
		p.restore(save)
		return p.parseExpressionStatement()
	default:
		return p.parseExpressionStatement()
	}
}

func (p *parser) parseBlock() (*ast.BlockStatement, error) {
	start := p.tok.Start
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	body, err := p.parseStatementList(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	blk := &ast.BlockStatement{Body: body}
	p.finish(blk, start)
	return blk, nil
}

func (p *parser) parseExpressionStatement() (ast.Node, error) {
	start := p.tok.Start
	expr, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return p.finish(&ast.ExpressionStatement{Expression: expr}, start), nil
}

// consumeSemicolon applies automatic semicolon insertion.
func (p *parser) consumeSemicolon() error {
	if p.atPunct(";") {
		return p.next()
	}
	if p.atPunct("}") || p.at(EOF) || p.tok.NewlineBefore {
		return nil
	}
	return p.errorf("missing semicolon before %q", p.tok.Lexeme)
}

func (p *parser) parseVariableDeclaration(consumeSemi bool) (*ast.VariableDeclaration, error) {
	start := p.tok.Start
	kind := p.tok.Lexeme
	if err := p.next(); err != nil {
		return nil, err
	}
	decl := &ast.VariableDeclaration{Kind: kind}
	for {
		dStart := p.tok.Start
		id, err := p.parseBindingTarget()
		if err != nil {
			return nil, err
		}
		d := &ast.VariableDeclarator{ID: id}
		if ok, err := p.eatPunct("="); err != nil {
			return nil, err
		} else if ok {
			init, err := p.parseAssignment(false)
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		p.finish(d, dStart)
		decl.Declarations = append(decl.Declarations, d)
		if ok, err := p.eatPunct(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if consumeSemi {
		if err := p.consumeSemicolon(); err != nil {
			return nil, err
		}
	}
	p.finish(decl, start)
	return decl, nil
}

func (p *parser) parseIf() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("if"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	test, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	cons, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	stmt := &ast.IfStatement{Test: test, Consequent: cons}
	if p.atKeyword("else") {
		if err := p.next(); err != nil {
			return nil, err
		}
		alt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmt.Alternate = alt
	}
	return p.finish(stmt, start), nil
}

func (p *parser) parseWhile() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("while"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	test, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return p.finish(&ast.WhileStatement{Test: test, Body: body}, start), nil
}

func (p *parser) parseDoWhile() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("do"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("while"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	test, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	// The semicolon after do-while is always optional.
	if _, err := p.eatPunct(";"); err != nil {
		return nil, err
	}
	return p.finish(&ast.DoWhileStatement{Body: body, Test: test}, start), nil
}

func (p *parser) parseFor() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("for"); err != nil {
		return nil, err
	}
	isAwait := false
	if p.atKeyword("await") {
		isAwait = true
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}

	var init ast.Node
	switch {
	case p.atPunct(";"):
		// no init
	case p.atKeyword("var"), p.atKeyword("let"), p.atKeyword("const"):
		decl, err := p.parseForDeclaration()
		if err != nil {
			return nil, err
		}
		init = decl
	default:
		expr, err := p.parseExpression(true)
		if err != nil {
			return nil, err
		}
		init = expr
	}

	if p.atKeyword("in") {
		if err := p.next(); err != nil {
			return nil, err
		}
		left, err := p.forTarget(init)
		if err != nil {
			return nil, err
		}
		right, err := p.parseExpression(false)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return p.finish(&ast.ForInStatement{Left: left, Right: right, Body: body}, start), nil
	}
	if p.atIdentLexeme("of") {
		if err := p.next(); err != nil {
			return nil, err
		}
		left, err := p.forTarget(init)
		if err != nil {
			return nil, err
		}
		right, err := p.parseAssignment(false)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return p.finish(&ast.ForOfStatement{Left: left, Right: right, Body: body, Await: isAwait}, start), nil
	}

	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	var test, update ast.Node
	if !p.atPunct(";") {
		t, err := p.parseExpression(false)
		if err != nil {
			return nil, err
		}
		test = t
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.atPunct(")") {
		u, err := p.parseExpression(false)
		if err != nil {
			return nil, err
		}
		update = u
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return p.finish(&ast.ForStatement{Init: init, Test: test, Update: update, Body: body}, start), nil
}

// parseForDeclaration parses `var/let/const target [= init]` without
// consuming a semicolon, stopping before `in`/`of` when appropriate.
func (p *parser) parseForDeclaration() (*ast.VariableDeclaration, error) {
	start := p.tok.Start
	kind := p.tok.Lexeme
	if err := p.next(); err != nil {
		return nil, err
	}
	decl := &ast.VariableDeclaration{Kind: kind}
	for {
		dStart := p.tok.Start
		id, err := p.parseBindingTarget()
		if err != nil {
			return nil, err
		}
		d := &ast.VariableDeclarator{ID: id}
		if ok, err := p.eatPunct("="); err != nil {
			return nil, err
		} else if ok {
			init, err := p.parseAssignmentNoIn()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		p.finish(d, dStart)
		decl.Declarations = append(decl.Declarations, d)
		if ok, err := p.eatPunct(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	p.finish(decl, start)
	return decl, nil
}

// forTarget validates/converts the pre-`in`/`of` part of a for statement.
func (p *parser) forTarget(init ast.Node) (ast.Node, error) {
	if init == nil {
		return nil, p.errorf("missing loop variable")
	}
	if decl, ok := init.(*ast.VariableDeclaration); ok {
		return decl, nil
	}
	return p.toPattern(init)
}

func (p *parser) parseSwitch() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("switch"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	disc, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	sw := &ast.SwitchStatement{Discriminant: disc}
	for !p.atPunct("}") {
		cStart := p.tok.Start
		c := &ast.SwitchCase{}
		if p.atKeyword("case") {
			if err := p.next(); err != nil {
				return nil, err
			}
			test, err := p.parseExpression(false)
			if err != nil {
				return nil, err
			}
			c.Test = test
		} else if p.atKeyword("default") {
			if err := p.next(); err != nil {
				return nil, err
			}
		} else {
			return nil, p.errorf("expected case or default, found %q", p.tok.Lexeme)
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		for !p.atPunct("}") && !p.atKeyword("case") && !p.atKeyword("default") {
			stmt, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			c.Consequent = append(c.Consequent, stmt)
		}
		p.finish(c, cStart)
		sw.Cases = append(sw.Cases, c)
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return p.finish(sw, start), nil
}

func (p *parser) parseReturn() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("return"); err != nil {
		return nil, err
	}
	ret := &ast.ReturnStatement{}
	// Restricted production: a newline after `return` terminates it.
	if !p.tok.NewlineBefore && !p.atPunct(";") && !p.atPunct("}") && !p.at(EOF) {
		arg, err := p.parseExpression(false)
		if err != nil {
			return nil, err
		}
		ret.Argument = arg
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return p.finish(ret, start), nil
}

func (p *parser) parseThrow() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("throw"); err != nil {
		return nil, err
	}
	if p.tok.NewlineBefore {
		return nil, p.errorf("newline not allowed after throw")
	}
	arg, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return p.finish(&ast.ThrowStatement{Argument: arg}, start), nil
}

func (p *parser) parseTry() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("try"); err != nil {
		return nil, err
	}
	block, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	stmt := &ast.TryStatement{Block: block}
	if p.atKeyword("catch") {
		cStart := p.tok.Start
		if err := p.next(); err != nil {
			return nil, err
		}
		clause := &ast.CatchClause{}
		if ok, err := p.eatPunct("("); err != nil {
			return nil, err
		} else if ok {
			param, err := p.parseBindingTarget()
			if err != nil {
				return nil, err
			}
			clause.Param = param
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		clause.Body = body
		p.finish(clause, cStart)
		stmt.Handler = clause
	}
	if p.atKeyword("finally") {
		if err := p.next(); err != nil {
			return nil, err
		}
		fin, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		stmt.Finalizer = fin
	}
	if stmt.Handler == nil && stmt.Finalizer == nil {
		return nil, p.errorf("try needs catch or finally")
	}
	return p.finish(stmt, start), nil
}

func (p *parser) parseBreakContinue(isBreak bool) (ast.Node, error) {
	start := p.tok.Start
	if err := p.next(); err != nil {
		return nil, err
	}
	var label *ast.Identifier
	if p.at(Ident) && !p.tok.NewlineBefore {
		label = p.identHere(p.tok.Lexeme)
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	if isBreak {
		return p.finish(&ast.BreakStatement{Label: label}, start), nil
	}
	return p.finish(&ast.ContinueStatement{Label: label}, start), nil
}

func (p *parser) parseWith() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("with"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	obj, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return p.finish(&ast.WithStatement{Object: obj, Body: body}, start), nil
}
