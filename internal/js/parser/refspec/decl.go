package refspec

import (
	"repro/internal/js/ast"
)

// saved is a parser backtracking checkpoint.
type saved struct {
	lexState   State
	tok        Token
	numStored  int
	numTokens  int
	lastEndPos ast.Pos
}

func (p *parser) save() saved {
	return saved{
		lexState:   p.lex.Save(),
		tok:        p.tok,
		numStored:  len(p.tokens),
		numTokens:  p.numTokens,
		lastEndPos: p.lastEnd_,
	}
}

func (p *parser) restore(s saved) {
	p.lex.Restore(s.lexState)
	p.tok = s.tok
	p.tokens = p.tokens[:s.numStored]
	p.numTokens = s.numTokens
	p.lastEnd_ = s.lastEndPos
}

// ---------------------------------------------------------------------------
// Functions
// ---------------------------------------------------------------------------

func (p *parser) parseFunctionDeclaration(isAsync bool) (*ast.FunctionDeclaration, error) {
	return p.parseFunctionDeclarationNamed(isAsync, false)
}

// parseFunctionDeclarationNamed parses a function declaration; allowAnon
// permits the anonymous `export default function () {}` form.
func (p *parser) parseFunctionDeclarationNamed(isAsync, allowAnon bool) (*ast.FunctionDeclaration, error) {
	start := p.tok.Start
	if err := p.expectKeyword("function"); err != nil {
		return nil, err
	}
	gen := false
	if ok, err := p.eatPunct("*"); err != nil {
		return nil, err
	} else if ok {
		gen = true
	}
	fn := &ast.FunctionDeclaration{Generator: gen, Async: isAsync}
	if p.at(Ident) || p.tok.Kind == Keyword && isContextualName(p.tok.Lexeme) {
		fn.ID = p.identHere(p.tok.Lexeme)
		if err := p.next(); err != nil {
			return nil, err
		}
	} else if !allowAnon {
		return nil, p.errorf("function declaration requires a name")
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	fn.Params = params
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	p.finish(fn, start)
	return fn, nil
}

func (p *parser) parseFunctionExpression(isAsync bool) (*ast.FunctionExpression, error) {
	start := p.tok.Start
	if err := p.expectKeyword("function"); err != nil {
		return nil, err
	}
	gen := false
	if ok, err := p.eatPunct("*"); err != nil {
		return nil, err
	} else if ok {
		gen = true
	}
	fn := &ast.FunctionExpression{Generator: gen, Async: isAsync}
	if p.at(Ident) {
		fn.ID = p.identHere(p.tok.Lexeme)
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	fn.Params = params
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	p.finish(fn, start)
	return fn, nil
}

// isContextualName reports keywords that are still valid as names in certain
// positions (sloppy-mode leniency for real-world code).
func isContextualName(s string) bool {
	switch s {
	case "yield", "await", "let":
		return true
	}
	return false
}

// parseParams parses `( param, ... )` with defaults, patterns, and rest.
func (p *parser) parseParams() ([]ast.Node, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []ast.Node
	for !p.atPunct(")") {
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		params = append(params, param)
		if ok, err := p.eatPunct(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *parser) parseParam() (ast.Node, error) {
	start := p.tok.Start
	if p.atPunct("...") {
		if err := p.next(); err != nil {
			return nil, err
		}
		arg, err := p.parseBindingTarget()
		if err != nil {
			return nil, err
		}
		return p.finish(&ast.RestElement{Argument: arg}, start), nil
	}
	target, err := p.parseBindingTarget()
	if err != nil {
		return nil, err
	}
	if ok, err := p.eatPunct("="); err != nil {
		return nil, err
	} else if ok {
		dflt, err := p.parseAssignment(false)
		if err != nil {
			return nil, err
		}
		return p.finish(&ast.AssignmentPattern{Left: target, Right: dflt}, start), nil
	}
	return target, nil
}

// parseBindingTarget parses an Identifier, ArrayPattern, or ObjectPattern in
// a binding position.
func (p *parser) parseBindingTarget() (ast.Node, error) {
	start := p.tok.Start
	switch {
	case p.at(Ident), p.tok.Kind == Keyword && isContextualName(p.tok.Lexeme):
		id := ast.NewIdentifier(p.tok.Lexeme)
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.finish(id, start), nil
	case p.atPunct("["):
		return p.parseArrayPattern()
	case p.atPunct("{"):
		return p.parseObjectPattern()
	default:
		return nil, p.errorf("expected binding target, found %q", p.tok.Lexeme)
	}
}

func (p *parser) parseArrayPattern() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	pat := &ast.ArrayPattern{}
	for !p.atPunct("]") {
		if p.atPunct(",") {
			pat.Elements = append(pat.Elements, nil) // hole
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		var el ast.Node
		var err error
		if p.atPunct("...") {
			eStart := p.tok.Start
			if err := p.next(); err != nil {
				return nil, err
			}
			arg, err := p.parseBindingTarget()
			if err != nil {
				return nil, err
			}
			el = p.finish(&ast.RestElement{Argument: arg}, eStart)
		} else {
			el, err = p.parseParam() // binding target with optional default
			if err != nil {
				return nil, err
			}
		}
		pat.Elements = append(pat.Elements, el)
		if !p.atPunct("]") {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	return p.finish(pat, start), nil
}

func (p *parser) parseObjectPattern() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	pat := &ast.ObjectPattern{}
	for !p.atPunct("}") {
		if p.atPunct("...") {
			eStart := p.tok.Start
			if err := p.next(); err != nil {
				return nil, err
			}
			arg, err := p.parseBindingTarget()
			if err != nil {
				return nil, err
			}
			pat.Properties = append(pat.Properties, p.finish(&ast.RestElement{Argument: arg}, eStart))
		} else {
			prop, err := p.parsePatternProperty()
			if err != nil {
				return nil, err
			}
			pat.Properties = append(pat.Properties, prop)
		}
		if !p.atPunct("}") {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return p.finish(pat, start), nil
}

func (p *parser) parsePatternProperty() (ast.Node, error) {
	start := p.tok.Start
	prop := &ast.Property{Kind: "init"}
	key, computed, err := p.parsePropertyKey()
	if err != nil {
		return nil, err
	}
	prop.Key = key
	prop.Computed = computed
	if ok, err := p.eatPunct(":"); err != nil {
		return nil, err
	} else if ok {
		val, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		prop.Value = val
	} else {
		// Shorthand `{a}` or `{a = 1}`.
		id, ok := key.(*ast.Identifier)
		if !ok {
			return nil, p.errorf("invalid shorthand pattern property")
		}
		prop.Shorthand = true
		if ok, err := p.eatPunct("="); err != nil {
			return nil, err
		} else if ok {
			dflt, err := p.parseAssignment(false)
			if err != nil {
				return nil, err
			}
			ap := &ast.AssignmentPattern{Left: cloneIdent(id), Right: dflt}
			p.finish(ap, start)
			prop.Value = ap
		} else {
			prop.Value = cloneIdent(id)
		}
	}
	return p.finish(prop, start), nil
}

// parsePropertyKey parses an object-literal / class-member key.
func (p *parser) parsePropertyKey() (ast.Node, bool, error) {
	start := p.tok.Start
	switch p.tok.Kind {
	case Ident, Keyword:
		id := ast.NewIdentifier(p.tok.Lexeme)
		if err := p.next(); err != nil {
			return nil, false, err
		}
		return p.finish(id, start), false, nil
	case String:
		lit := p.stringLitHere()
		if err := p.next(); err != nil {
			return nil, false, err
		}
		return p.finish(lit, start), false, nil
	case Number:
		lit := &ast.Literal{Kind: ast.LiteralNumber, Raw: p.tok.Lexeme, Number: p.tok.NumberValue}
		if err := p.next(); err != nil {
			return nil, false, err
		}
		return p.finish(lit, start), false, nil
	case PrivateIdent:
		id := ast.NewIdentifier(p.tok.Lexeme)
		if err := p.next(); err != nil {
			return nil, false, err
		}
		return p.finish(id, start), false, nil
	case Punct:
		if p.atPunct("[") {
			if err := p.next(); err != nil {
				return nil, false, err
			}
			key, err := p.parseAssignment(false)
			if err != nil {
				return nil, false, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, false, err
			}
			return key, true, nil
		}
	}
	return nil, false, p.errorf("expected property key, found %q", p.tok.Lexeme)
}

// ---------------------------------------------------------------------------
// Classes
// ---------------------------------------------------------------------------

func (p *parser) parseClassDeclaration() (ast.Node, error) {
	start := p.tok.Start
	id, super, body, err := p.parseClassTail()
	if err != nil {
		return nil, err
	}
	return p.finish(&ast.ClassDeclaration{ID: id, SuperClass: super, Body: body}, start), nil
}

func (p *parser) parseClassExpression() (ast.Node, error) {
	start := p.tok.Start
	id, super, body, err := p.parseClassTail()
	if err != nil {
		return nil, err
	}
	return p.finish(&ast.ClassExpression{ID: id, SuperClass: super, Body: body}, start), nil
}

func (p *parser) parseClassTail() (*ast.Identifier, ast.Node, *ast.ClassBody, error) {
	if err := p.expectKeyword("class"); err != nil {
		return nil, nil, nil, err
	}
	var id *ast.Identifier
	if p.at(Ident) {
		id = p.identHere(p.tok.Lexeme)
		if err := p.next(); err != nil {
			return nil, nil, nil, err
		}
	}
	var super ast.Node
	if p.atKeyword("extends") {
		if err := p.next(); err != nil {
			return nil, nil, nil, err
		}
		s, err := p.parseLeftHandSide()
		if err != nil {
			return nil, nil, nil, err
		}
		super = s
	}
	bStart := p.tok.Start
	if err := p.expectPunct("{"); err != nil {
		return nil, nil, nil, err
	}
	body := &ast.ClassBody{}
	for !p.atPunct("}") {
		if ok, err := p.eatPunct(";"); err != nil {
			return nil, nil, nil, err
		} else if ok {
			continue
		}
		m, err := p.parseClassMember()
		if err != nil {
			return nil, nil, nil, err
		}
		body.Body = append(body.Body, m)
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, nil, nil, err
	}
	p.finish(body, bStart)
	return id, super, body, nil
}

// parseClassMember parses one method, accessor, or class field.
func (p *parser) parseClassMember() (ast.Node, error) {
	start := p.tok.Start
	m := &ast.MethodDefinition{Kind: "method"}
	if p.atIdentLexeme("static") {
		save := p.save()
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.atPunct("(") {
			p.restore(save) // a method actually named `static`
		} else {
			m.Static = true
		}
	}
	isAsync := false
	isGen := false
	if p.atIdentLexeme("async") {
		save := p.save()
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.atPunct("(") {
			p.restore(save) // method named `async`
		} else {
			isAsync = true
		}
	}
	if p.atPunct("*") {
		isGen = true
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if p.atIdentLexeme("get") || p.atIdentLexeme("set") {
		accessor := p.tok.Lexeme
		save := p.save()
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.atPunct("(") {
			p.restore(save) // method named get/set
		} else {
			m.Kind = accessor
		}
	}
	key, computed, err := p.parsePropertyKey()
	if err != nil {
		return nil, err
	}
	m.Key = key
	m.Computed = computed
	// Class field: `key = value;`, `key;`, or key followed by `}` / a new
	// member on the next line (ES2022 PropertyDefinition).
	if m.Kind == "method" && !p.atPunct("(") {
		field := &ast.PropertyDefinition{Key: key, Computed: computed, Static: m.Static}
		if ok, err := p.eatPunct("="); err != nil {
			return nil, err
		} else if ok {
			val, err := p.parseAssignment(false)
			if err != nil {
				return nil, err
			}
			field.Value = val
		}
		if err := p.consumeSemicolon(); err != nil {
			return nil, err
		}
		return p.finish(field, start), nil
	}
	if id, ok := key.(*ast.Identifier); ok && !computed && id.Name == "constructor" && m.Kind == "method" && !m.Static {
		m.Kind = "constructor"
	}
	fStart := p.tok.Start
	params, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn := &ast.FunctionExpression{Params: params, Body: body, Generator: isGen, Async: isAsync}
	p.finish(fn, fStart)
	m.Value = fn
	p.finish(m, start)
	return m, nil
}

// ---------------------------------------------------------------------------
// Modules
// ---------------------------------------------------------------------------

func (p *parser) parseImport() (ast.Node, error) {
	start := p.tok.Start
	save := p.save()
	if err := p.expectKeyword("import"); err != nil {
		return nil, err
	}
	// `import(...)` dynamic import and `import.meta` are expressions.
	if p.atPunct("(") || p.atPunct(".") {
		p.restore(save)
		return p.parseExpressionStatement()
	}
	decl := &ast.ImportDeclaration{}
	if p.at(String) {
		// `import "mod";`
		decl.Source = p.stringLitHere()
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.consumeSemicolon(); err != nil {
			return nil, err
		}
		return p.finish(decl, start), nil
	}
	for {
		switch {
		case p.at(Ident):
			spec := &ast.ImportDefaultSpecifier{Local: p.identHere(p.tok.Lexeme)}
			spec.SetSpan(spec.Local.Span())
			if err := p.next(); err != nil {
				return nil, err
			}
			decl.Specifiers = append(decl.Specifiers, spec)
		case p.atPunct("*"):
			if err := p.next(); err != nil {
				return nil, err
			}
			if !p.atIdentLexeme("as") {
				return nil, p.errorf("expected 'as' in namespace import")
			}
			if err := p.next(); err != nil {
				return nil, err
			}
			spec := &ast.ImportNamespaceSpecifier{Local: p.identHere(p.tok.Lexeme)}
			spec.SetSpan(spec.Local.Span())
			if err := p.next(); err != nil {
				return nil, err
			}
			decl.Specifiers = append(decl.Specifiers, spec)
		case p.atPunct("{"):
			if err := p.next(); err != nil {
				return nil, err
			}
			for !p.atPunct("}") {
				imported := p.identHere(p.tok.Lexeme)
				if err := p.next(); err != nil {
					return nil, err
				}
				local := imported
				if p.atIdentLexeme("as") {
					if err := p.next(); err != nil {
						return nil, err
					}
					local = p.identHere(p.tok.Lexeme)
					if err := p.next(); err != nil {
						return nil, err
					}
				}
				spec := &ast.ImportSpecifier{Imported: imported, Local: local}
				spec.SetSpan(span(imported.Span().Start, local.Span().End))
				decl.Specifiers = append(decl.Specifiers, spec)
				if !p.atPunct("}") {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("unexpected token in import: %q", p.tok.Lexeme)
		}
		if ok, err := p.eatPunct(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if !p.atIdentLexeme("from") {
		return nil, p.errorf("expected 'from' in import")
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	if !p.at(String) {
		return nil, p.errorf("expected module string in import")
	}
	decl.Source = p.stringLitHere()
	if err := p.next(); err != nil {
		return nil, err
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return p.finish(decl, start), nil
}

func (p *parser) parseExport() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("export"); err != nil {
		return nil, err
	}
	switch {
	case p.atKeyword("default"):
		if err := p.next(); err != nil {
			return nil, err
		}
		var decl ast.Node
		var err error
		switch {
		case p.atKeyword("function"):
			decl, err = p.parseFunctionDeclarationNamed(false, true)
		case p.atKeyword("class"):
			decl, err = p.parseClassDeclaration()
		default:
			decl, err = p.parseAssignment(false)
			if err == nil {
				err = p.consumeSemicolon()
			}
		}
		if err != nil {
			return nil, err
		}
		return p.finish(&ast.ExportDefaultDeclaration{Declaration: decl}, start), nil
	case p.atPunct("*"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if !p.atIdentLexeme("from") {
			return nil, p.errorf("expected 'from' in export *")
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		if !p.at(String) {
			return nil, p.errorf("expected module string in export *")
		}
		src := p.stringLitHere()
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.consumeSemicolon(); err != nil {
			return nil, err
		}
		return p.finish(&ast.ExportAllDeclaration{Source: src}, start), nil
	case p.atPunct("{"):
		if err := p.next(); err != nil {
			return nil, err
		}
		decl := &ast.ExportNamedDeclaration{}
		for !p.atPunct("}") {
			local := p.identHere(p.tok.Lexeme)
			if err := p.next(); err != nil {
				return nil, err
			}
			exported := local
			if p.atIdentLexeme("as") {
				if err := p.next(); err != nil {
					return nil, err
				}
				exported = p.identHere(p.tok.Lexeme)
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			spec := &ast.ExportSpecifier{Local: local, Exported: exported}
			spec.SetSpan(span(local.Span().Start, exported.Span().End))
			decl.Specifiers = append(decl.Specifiers, spec)
			if !p.atPunct("}") {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		if p.atIdentLexeme("from") {
			if err := p.next(); err != nil {
				return nil, err
			}
			if !p.at(String) {
				return nil, p.errorf("expected module string")
			}
			decl.Source = p.stringLitHere()
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if err := p.consumeSemicolon(); err != nil {
			return nil, err
		}
		return p.finish(decl, start), nil
	default:
		var inner ast.Node
		var err error
		switch {
		case p.atKeyword("var"), p.atKeyword("let"), p.atKeyword("const"):
			inner, err = p.parseVariableDeclaration(true)
		case p.atKeyword("function"):
			inner, err = p.parseFunctionDeclaration(false)
		case p.atKeyword("class"):
			inner, err = p.parseClassDeclaration()
		case p.atIdentLexeme("async"):
			if err := p.next(); err != nil {
				return nil, err
			}
			inner, err = p.parseFunctionDeclaration(true)
		default:
			return nil, p.errorf("unexpected token after export: %q", p.tok.Lexeme)
		}
		if err != nil {
			return nil, err
		}
		return p.finish(&ast.ExportNamedDeclaration{Declaration: inner}, start), nil
	}
}
