// Differential golden test: the arena parser must produce bit-identical
// results to the refspec snapshot of the pre-arena parser. The corpus
// generator plus every monitored transformation technique feeds both paths,
// and the trees, spans, token streams, and comments are compared under the
// zero-copy token contract.
package refspec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/js/ast"
	"repro/internal/js/lexer"
	"repro/internal/js/parser"
	"repro/internal/js/parser/refspec"
	"repro/internal/js/printer"
	"repro/internal/js/walker"
	"repro/internal/transform"
)

// bs is a single backslash. The JavaScript escape sequences under test are
// built by concatenation so they reach the lexer as escape sequences instead
// of being decoded by the Go compiler.
const bs = "\x5C"

// escapeSeeds are inputs that force the zero-copy lexer off its fast path:
// escaped identifiers and private names, escaped and astral string contents,
// line continuations, CR/CRLF in templates, raw U+2028, and invalid UTF-8.
var escapeSeeds = []string{
	"var " + bs + "u0041bc = 1; " + bs + "u0041bc += 2;",
	"var x = 'a" + bs + "u0041" + bs + "x42" + bs + "n';",
	"var y = \"" + bs + "u{1F600}\" + \"plain\";",
	"let s = 'a" + bs + "\r\nb';",
	"let t = `a\r\nb${1}c\rd`;",
	"let u = 'x" + string(rune(0x2028)) + "y';",
	"let v = `x" + string(rune(0x2029)) + "y`;",
	"class A { #x = 1; #" + bs + "u0079; m() { return this.#x + this.#" + bs + "u0079; } }",
	"`" + bs + "u0041${x}" + bs + "x42`",
	"var w = 'a\xFFb';",
	"if (" + bs + "u0069f) {}", // escaped keyword spelling: both paths must reject it the same way
}

// nodeRecord is one step of a pre-order walk: the dynamic kind and the span,
// which together pin the tree shape and every position the parser assigned.
type nodeRecord struct {
	kind ast.Kind
	span ast.Span
}

func stream(prog *ast.Program) []nodeRecord {
	var out []nodeRecord
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		out = append(out, nodeRecord{n.NodeKind(), n.Span()})
		return true
	})
	return out
}

// compareToken checks one token pair under the zero-copy contract: positions
// and values must match exactly, the arena-path Lexeme must be the literal
// source slice, and StringValue must carry the decoded name the reference
// kept in its (decoded) Lexeme.
func compareToken(t *testing.T, name string, i int, src string, ref refspec.Token, got lexer.Token) {
	t.Helper()
	if int(ref.Kind) != int(got.Kind) || ref.Start != got.Start || ref.End != got.End ||
		ref.NewlineBefore != got.NewlineBefore || ref.NumberValue != got.NumberValue ||
		ref.RegexPattern != got.RegexPattern || ref.RegexFlags != got.RegexFlags {
		t.Fatalf("%s: token %d differs:\nreference %+v\narena     %+v", name, i, ref, got)
	}
	if want := src[got.Start.Offset:got.End.Offset]; got.Lexeme != want {
		t.Fatalf("%s: token %d Lexeme = %q, want the source slice %q", name, i, got.Lexeme, want)
	}
	switch got.Kind {
	case lexer.Ident, lexer.Keyword:
		// The reference decoded escapes into Lexeme; the arena path keeps
		// the raw spelling there and decodes into StringValue.
		if got.StringValue != ref.Lexeme {
			t.Fatalf("%s: token %d decoded name = %q, want %q", name, i, got.StringValue, ref.Lexeme)
		}
	case lexer.PrivateIdent:
		// Both spellings carry the leading '#'.
		if got.StringValue != ref.Lexeme {
			t.Fatalf("%s: token %d private name = %q, want %q", name, i, got.StringValue, ref.Lexeme)
		}
	default:
		if got.StringValue != ref.StringValue {
			t.Fatalf("%s: token %d StringValue = %q, want %q", name, i, got.StringValue, ref.StringValue)
		}
	}
}

func compareParses(t *testing.T, name, src string) {
	t.Helper()
	ref, refErr := refspec.Parse(src)
	got, gotErr := parser.Parse(src)
	if (refErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: reference error %v, arena error %v", name, refErr, gotErr)
	}
	if refErr != nil {
		return
	}
	if want, have := printer.Compact(ref.Program), printer.Compact(got.Program); want != have {
		t.Fatalf("%s: printed output differs\nreference: %s\narena:     %s", name, want, have)
	}
	refStream, gotStream := stream(ref.Program), stream(got.Program)
	if len(refStream) != len(gotStream) {
		t.Fatalf("%s: node count %d, want %d", name, len(gotStream), len(refStream))
	}
	for i := range refStream {
		if refStream[i] != gotStream[i] {
			t.Fatalf("%s: node %d = %v/%v, want %v/%v", name, i,
				gotStream[i].kind, gotStream[i].span, refStream[i].kind, refStream[i].span)
		}
	}
	if ref.NumTokens != got.NumTokens {
		t.Fatalf("%s: NumTokens = %d, want %d", name, got.NumTokens, ref.NumTokens)
	}
	if len(ref.Tokens) != len(got.Tokens) {
		t.Fatalf("%s: %d tokens, want %d", name, len(got.Tokens), len(ref.Tokens))
	}
	for i := range ref.Tokens {
		compareToken(t, name, i, src, ref.Tokens[i], got.Tokens[i])
	}
	if len(ref.Comments) != len(got.Comments) {
		t.Fatalf("%s: %d comments, want %d", name, len(got.Comments), len(ref.Comments))
	}
	for i := range ref.Comments {
		r, g := ref.Comments[i], got.Comments[i]
		if r.Span != g.Span || r.Text != g.Text || r.Block != g.Block {
			t.Fatalf("%s: comment %d = %+v, want %+v", name, i, g, r)
		}
	}
}

// TestArenaParserMatchesReference drives generated corpus files plus one
// output per monitored transformation technique through the reference parser
// and the arena parser and requires identical results.
func TestArenaParserMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	files := corpus.RegularSet(3, rng)
	base := files[0]
	for _, tech := range transform.Techniques {
		out, err := corpus.Apply(base, rng, tech)
		if err != nil {
			t.Fatalf("apply %s: %v", tech, err)
		}
		files = append(files, out)
	}
	for i, f := range files {
		compareParses(t, fmt.Sprintf("%s#%d", f.Name, i), f.Source)
	}
}

// TestArenaParserMatchesReferenceOnEscapes covers the lexer's slow paths,
// which the generated corpus rarely reaches.
func TestArenaParserMatchesReferenceOnEscapes(t *testing.T) {
	exercised := false
	for i, src := range escapeSeeds {
		compareParses(t, fmt.Sprintf("escape seed %d", i), src)
		if res, err := parser.Parse(src); err == nil {
			for _, tok := range res.Tokens {
				if tok.Kind == lexer.Ident && tok.Lexeme != tok.StringValue {
					exercised = true
				}
			}
		}
	}
	if !exercised {
		t.Fatal("no seed produced an identifier whose raw and decoded spellings differ; the slow path was not exercised")
	}
}
