// Token kinds and token/comment types of the snapshot lexer, copied
// verbatim from internal/js/lexer at the pre-arena revision.
package refspec

import (
	"fmt"

	"repro/internal/js/ast"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota + 1
	Ident
	Keyword
	Punct
	Number
	String
	Regex
	// NoSubstTemplate is a template literal without substitutions: `abc`.
	NoSubstTemplate
	// TemplateHead is the `abc${ part of a template with substitutions.
	TemplateHead
	// TemplateMiddle is a }abc${ continuation.
	TemplateMiddle
	// TemplateTail is the closing }abc` part.
	TemplateTail
	// PrivateIdent is a #name class member reference.
	PrivateIdent
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "Ident"
	case Keyword:
		return "Keyword"
	case Punct:
		return "Punct"
	case Number:
		return "Number"
	case String:
		return "String"
	case Regex:
		return "Regex"
	case NoSubstTemplate:
		return "NoSubstTemplate"
	case TemplateHead:
		return "TemplateHead"
	case TemplateMiddle:
		return "TemplateMiddle"
	case TemplateTail:
		return "TemplateTail"
	case PrivateIdent:
		return "PrivateIdent"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Token is one lexical unit.
type Token struct {
	Kind   Kind
	Lexeme string // raw source text of the token
	Start  ast.Pos
	End    ast.Pos
	// NewlineBefore is true when a line terminator appears between the
	// previous token and this one; the parser needs it for automatic
	// semicolon insertion.
	NewlineBefore bool
	// StringValue is the decoded value for String tokens and the cooked
	// value for template tokens.
	StringValue string
	// NumberValue is the numeric value for Number tokens.
	NumberValue float64
	// RegexPattern and RegexFlags are set for Regex tokens.
	RegexPattern string
	RegexFlags   string
}

// IsPunct reports whether the token is the given punctuator.
func (t Token) IsPunct(s string) bool { return t.Kind == Punct && t.Lexeme == s }

// IsKeyword reports whether the token is the given keyword.
func (t Token) IsKeyword(s string) bool { return t.Kind == Keyword && t.Lexeme == s }

// Comment is a source comment, retained for token-level features such as the
// comment-to-code ratio that distinguishes minified from regular scripts.
type Comment struct {
	Span  ast.Span
	Text  string // comment text without delimiters
	Block bool   // true for /* */ comments
}

// keywords is the set of reserved words tokenized as Keyword. Contextual
// keywords (of, async, get, set, static, from, as) stay Ident and are
// recognized by the parser from the lexeme.
var keywords = map[string]bool{
	"await": true, "break": true, "case": true, "catch": true, "class": true,
	"const": true, "continue": true, "debugger": true, "default": true,
	"delete": true, "do": true, "else": true, "export": true, "extends": true,
	"finally": true, "for": true, "function": true, "if": true, "import": true,
	"in": true, "instanceof": true, "let": true, "new": true, "return": true,
	"super": true, "switch": true, "this": true, "throw": true, "try": true,
	"typeof": true, "var": true, "void": true, "while": true, "with": true,
	"yield": true, "true": true, "false": true, "null": true,
}
