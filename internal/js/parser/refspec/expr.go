package refspec

import (
	"repro/internal/js/ast"
)

// parseExpression parses a (possibly comma-separated sequence) expression.
// noIn suppresses the `in` operator, for `for (a in b)` disambiguation.
func (p *parser) parseExpression(noIn bool) (ast.Node, error) {
	start := p.tok.Start
	first, err := p.parseAssignment(noIn)
	if err != nil {
		return nil, err
	}
	if !p.atPunct(",") {
		return first, nil
	}
	seq := &ast.SequenceExpression{Expressions: []ast.Node{first}}
	for p.atPunct(",") {
		if err := p.next(); err != nil {
			return nil, err
		}
		next, err := p.parseAssignment(noIn)
		if err != nil {
			return nil, err
		}
		seq.Expressions = append(seq.Expressions, next)
	}
	return p.finish(seq, start), nil
}

func (p *parser) parseAssignmentNoIn() (ast.Node, error) { return p.parseAssignment(true) }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"<<=": true, ">>=": true, ">>>=": true, "&=": true, "|=": true, "^=": true,
	"**=": true, "&&=": true, "||=": true, "??=": true,
}

// parseAssignment parses an AssignmentExpression (the non-comma expression
// level): arrows, yield, conditional, and assignment operators.
func (p *parser) parseAssignment(noIn bool) (ast.Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	start := p.tok.Start

	if p.atKeyword("yield") {
		return p.parseYield()
	}

	// Arrow function fast paths and cover-grammar handling.
	if arrow, ok, err := p.tryParseArrow(); err != nil {
		return nil, err
	} else if ok {
		return arrow, nil
	}

	left, err := p.parseConditional(noIn)
	if err != nil {
		return nil, err
	}

	if p.tok.Kind == Punct && assignOps[p.tok.Lexeme] {
		op := p.tok.Lexeme
		if err := p.next(); err != nil {
			return nil, err
		}
		target := left
		if op == "=" {
			// Destructuring assignment: reinterpret literal as pattern.
			switch left.(type) {
			case *ast.ArrayExpression, *ast.ObjectExpression:
				target, err = p.toPattern(left)
				if err != nil {
					return nil, err
				}
			}
		}
		right, err := p.parseAssignment(noIn)
		if err != nil {
			return nil, err
		}
		return p.finish(&ast.AssignmentExpression{Operator: op, Left: target, Right: right}, start), nil
	}
	return left, nil
}

func (p *parser) parseYield() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectKeyword("yield"); err != nil {
		return nil, err
	}
	y := &ast.YieldExpression{}
	if p.atPunct("*") {
		y.Delegate = true
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if !p.tok.NewlineBefore && !p.atPunct(")") && !p.atPunct("]") && !p.atPunct("}") &&
		!p.atPunct(",") && !p.atPunct(";") && !p.atPunct(":") && !p.at(EOF) {
		arg, err := p.parseAssignment(false)
		if err != nil {
			return nil, err
		}
		y.Argument = arg
	}
	return p.finish(y, start), nil
}

// tryParseArrow recognizes the three arrow-function head shapes with bounded
// backtracking: `x =>`, `(params) =>`, and `async ... =>`.
func (p *parser) tryParseArrow() (ast.Node, bool, error) {
	start := p.tok.Start

	// `async` prefixed arrows.
	if p.atIdentLexeme("async") {
		save := p.save()
		if err := p.next(); err != nil {
			return nil, false, err
		}
		if !p.tok.NewlineBefore && (p.at(Ident) || p.atPunct("(")) && !p.atKeyword("function") {
			if arrow, ok, err := p.tryParseArrowTail(start, true); err == nil && ok {
				return arrow, true, nil
			}
		}
		p.restore(save)
		return nil, false, nil
	}
	return p.tryParseArrowTail(start, false)
}

// tryParseArrowTail attempts `ident =>` or `(params) =>` from the current
// position; it restores the parser state and reports ok=false when the input
// is not an arrow function.
func (p *parser) tryParseArrowTail(start ast.Pos, isAsync bool) (ast.Node, bool, error) {
	if p.at(Ident) || (p.tok.Kind == Keyword && isContextualName(p.tok.Lexeme)) {
		save := p.save()
		name := p.identHere(p.tok.Lexeme)
		if err := p.next(); err != nil {
			return nil, false, err
		}
		if p.atPunct("=>") && !p.tok.NewlineBefore {
			params := []ast.Node{name}
			arrow, err := p.parseArrowBody(start, params, isAsync)
			if err != nil {
				return nil, false, err
			}
			return arrow, true, nil
		}
		p.restore(save)
		return nil, false, nil
	}
	if p.atPunct("(") {
		// Memoize failed paren-head attempts by byte offset. Without this,
		// nested cover-grammar input such as `(a = (b = (c = ...` is
		// re-attempted as an arrow head once per enclosing retry, doubling
		// the work at every nesting level (exponential parse time).
		off := p.tok.Start.Offset
		if p.arrowFail[off] {
			return nil, false, nil
		}
		save := p.save()
		params, err := p.tryParseArrowParams()
		if err == nil && p.atPunct("=>") && !p.tok.NewlineBefore {
			arrow, err := p.parseArrowBody(start, params, isAsync)
			if err != nil {
				return nil, false, err
			}
			return arrow, true, nil
		}
		p.restore(save)
		if p.arrowFail == nil {
			p.arrowFail = make(map[int]bool)
		}
		p.arrowFail[off] = true
		return nil, false, nil
	}
	return nil, false, nil
}

// tryParseArrowParams parses `( bindings )` strictly as a parameter list.
func (p *parser) tryParseArrowParams() ([]ast.Node, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []ast.Node
	for !p.atPunct(")") {
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		params = append(params, param)
		if ok, err := p.eatPunct(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *parser) parseArrowBody(start ast.Pos, params []ast.Node, isAsync bool) (ast.Node, error) {
	if err := p.expectPunct("=>"); err != nil {
		return nil, err
	}
	arrow := &ast.ArrowFunctionExpression{Params: params, Async: isAsync}
	if p.atPunct("{") {
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		arrow.Body = body
	} else {
		body, err := p.parseAssignment(false)
		if err != nil {
			return nil, err
		}
		arrow.Body = body
		arrow.Expression = true
	}
	return p.finish(arrow, start), nil
}

func (p *parser) parseConditional(noIn bool) (ast.Node, error) {
	start := p.tok.Start
	test, err := p.parseBinary(0, noIn)
	if err != nil {
		return nil, err
	}
	if !p.atPunct("?") {
		return test, nil
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	cons, err := p.parseAssignment(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	alt, err := p.parseAssignment(noIn)
	if err != nil {
		return nil, err
	}
	return p.finish(&ast.ConditionalExpression{Test: test, Consequent: cons, Alternate: alt}, start), nil
}

// binaryPrec maps binary/logical operators to precedence levels. Higher binds
// tighter. Zero means "not a binary operator".
var binaryPrec = map[string]int{
	"??": 1,
	"||": 2, "&&": 3,
	"|": 4, "^": 5, "&": 6,
	"==": 7, "!=": 7, "===": 7, "!==": 7,
	"<": 8, ">": 8, "<=": 8, ">=": 8, "in": 8, "instanceof": 8,
	"<<": 9, ">>": 9, ">>>": 9,
	"+": 10, "-": 10,
	"*": 11, "/": 11, "%": 11,
	"**": 12,
}

func isLogicalOp(op string) bool { return op == "&&" || op == "||" || op == "??" }

func (p *parser) binaryOp(noIn bool) (string, int) {
	var op string
	switch {
	case p.tok.Kind == Punct:
		op = p.tok.Lexeme
	case p.atKeyword("in"):
		if noIn {
			return "", 0
		}
		op = "in"
	case p.atKeyword("instanceof"):
		op = "instanceof"
	default:
		return "", 0
	}
	return op, binaryPrec[op]
}

// parseBinary is a precedence climber over binary and logical operators.
func (p *parser) parseBinary(minPrec int, noIn bool) (ast.Node, error) {
	start := p.tok.Start
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, prec := p.binaryOp(noIn)
		if prec == 0 || prec < minPrec {
			return left, nil
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		// `**` is right-associative; everything else is left-associative.
		nextMin := prec + 1
		if op == "**" {
			nextMin = prec
		}
		right, err := p.parseBinary(nextMin, noIn)
		if err != nil {
			return nil, err
		}
		if isLogicalOp(op) {
			left = &ast.LogicalExpression{Operator: op, Left: left, Right: right}
		} else {
			left = &ast.BinaryExpression{Operator: op, Left: left, Right: right}
		}
		p.finish(left, start)
	}
}

var unaryOps = map[string]bool{
	"+": true, "-": true, "~": true, "!": true,
}

func (p *parser) parseUnary() (ast.Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	start := p.tok.Start

	switch {
	case p.tok.Kind == Punct && unaryOps[p.tok.Lexeme]:
		op := p.tok.Lexeme
		if err := p.next(); err != nil {
			return nil, err
		}
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return p.finish(&ast.UnaryExpression{Operator: op, Argument: arg}, start), nil
	case p.atKeyword("typeof"), p.atKeyword("void"), p.atKeyword("delete"):
		op := p.tok.Lexeme
		if err := p.next(); err != nil {
			return nil, err
		}
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return p.finish(&ast.UnaryExpression{Operator: op, Argument: arg}, start), nil
	case p.atPunct("++"), p.atPunct("--"):
		op := p.tok.Lexeme
		if err := p.next(); err != nil {
			return nil, err
		}
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return p.finish(&ast.UpdateExpression{Operator: op, Argument: arg, Prefix: true}, start), nil
	case p.atKeyword("await"):
		if err := p.next(); err != nil {
			return nil, err
		}
		arg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return p.finish(&ast.AwaitExpression{Argument: arg}, start), nil
	}

	expr, err := p.parseLeftHandSide()
	if err != nil {
		return nil, err
	}
	// Postfix update; restricted production: no newline before ++/--.
	if (p.atPunct("++") || p.atPunct("--")) && !p.tok.NewlineBefore {
		op := p.tok.Lexeme
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.finish(&ast.UpdateExpression{Operator: op, Argument: expr, Prefix: false}, start), nil
	}
	return expr, nil
}

// parseLeftHandSide parses new/call/member chains, optional chaining, and
// tagged templates.
func (p *parser) parseLeftHandSide() (ast.Node, error) {
	start := p.tok.Start
	var expr ast.Node
	var err error
	if p.atKeyword("new") {
		expr, err = p.parseNew()
	} else {
		expr, err = p.parsePrimary()
	}
	if err != nil {
		return nil, err
	}
	return p.parseCallTail(expr, start)
}

func (p *parser) parseNew() (ast.Node, error) {
	start := p.tok.Start
	newEnd := p.tok.End
	if err := p.expectKeyword("new"); err != nil {
		return nil, err
	}
	if p.atPunct(".") {
		// new.target
		if err := p.next(); err != nil {
			return nil, err
		}
		prop := p.identHere(p.tok.Lexeme)
		if err := p.next(); err != nil {
			return nil, err
		}
		meta := ast.NewIdentifier("new")
		meta.SetSpan(span(start, newEnd))
		return p.finish(&ast.MetaProperty{Meta: meta, Property: prop}, start), nil
	}
	var callee ast.Node
	var err error
	if p.atKeyword("new") {
		callee, err = p.parseNew()
	} else {
		callee, err = p.parsePrimary()
	}
	if err != nil {
		return nil, err
	}
	// Member accesses bind tighter than the `new` arguments.
	callee, err = p.parseMemberTail(callee, start)
	if err != nil {
		return nil, err
	}
	ne := &ast.NewExpression{Callee: callee}
	if p.atPunct("(") {
		args, err := p.parseArguments()
		if err != nil {
			return nil, err
		}
		ne.Arguments = args
	}
	return p.finish(ne, start), nil
}

// parseMemberTail extends expr with `.name`, `[expr]`, and template tags, but
// not call arguments (used for `new` callees).
func (p *parser) parseMemberTail(expr ast.Node, start ast.Pos) (ast.Node, error) {
	for {
		switch {
		case p.atPunct("."):
			if err := p.next(); err != nil {
				return nil, err
			}
			if p.tok.Kind != Ident && p.tok.Kind != Keyword && p.tok.Kind != PrivateIdent {
				return nil, p.errorf("expected property name, found %q", p.tok.Lexeme)
			}
			prop := p.identHere(p.tok.Lexeme)
			if err := p.next(); err != nil {
				return nil, err
			}
			expr = p.finish(&ast.MemberExpression{Object: expr, Property: prop}, start)
		case p.atPunct("["):
			if err := p.next(); err != nil {
				return nil, err
			}
			prop, err := p.parseExpression(false)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			expr = p.finish(&ast.MemberExpression{Object: expr, Property: prop, Computed: true}, start)
		default:
			return expr, nil
		}
	}
}

// parseCallTail extends expr with member accesses, calls, optional chaining,
// and tagged templates.
func (p *parser) parseCallTail(expr ast.Node, start ast.Pos) (ast.Node, error) {
	for {
		switch {
		case p.atPunct("."), p.atPunct("["):
			var err error
			expr, err = p.parseMemberTailOne(expr, start)
			if err != nil {
				return nil, err
			}
		case p.atPunct("?."):
			if err := p.next(); err != nil {
				return nil, err
			}
			switch {
			case p.atPunct("("):
				args, err := p.parseArguments()
				if err != nil {
					return nil, err
				}
				expr = p.finish(&ast.CallExpression{Callee: expr, Arguments: args, Optional: true}, start)
			case p.atPunct("["):
				if err := p.next(); err != nil {
					return nil, err
				}
				prop, err := p.parseExpression(false)
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct("]"); err != nil {
					return nil, err
				}
				expr = p.finish(&ast.MemberExpression{Object: expr, Property: prop, Computed: true, Optional: true}, start)
			default:
				if p.tok.Kind != Ident && p.tok.Kind != Keyword && p.tok.Kind != PrivateIdent {
					return nil, p.errorf("expected property name after ?., found %q", p.tok.Lexeme)
				}
				prop := p.identHere(p.tok.Lexeme)
				if err := p.next(); err != nil {
					return nil, err
				}
				expr = p.finish(&ast.MemberExpression{Object: expr, Property: prop, Optional: true}, start)
			}
		case p.atPunct("("):
			args, err := p.parseArguments()
			if err != nil {
				return nil, err
			}
			expr = p.finish(&ast.CallExpression{Callee: expr, Arguments: args}, start)
		case p.at(NoSubstTemplate), p.at(TemplateHead):
			quasi, err := p.parseTemplateLiteral()
			if err != nil {
				return nil, err
			}
			expr = p.finish(&ast.TaggedTemplateExpression{Tag: expr, Quasi: quasi}, start)
		default:
			return expr, nil
		}
	}
}

func (p *parser) parseMemberTailOne(expr ast.Node, start ast.Pos) (ast.Node, error) {
	if p.atPunct(".") {
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind != Ident && p.tok.Kind != Keyword && p.tok.Kind != PrivateIdent {
			return nil, p.errorf("expected property name, found %q", p.tok.Lexeme)
		}
		prop := p.identHere(p.tok.Lexeme)
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.finish(&ast.MemberExpression{Object: expr, Property: prop}, start), nil
	}
	if err := p.next(); err != nil { // '['
		return nil, err
	}
	prop, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	return p.finish(&ast.MemberExpression{Object: expr, Property: prop, Computed: true}, start), nil
}

func (p *parser) parseArguments() ([]ast.Node, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []ast.Node
	for !p.atPunct(")") {
		if p.atPunct("...") {
			sStart := p.tok.Start
			if err := p.next(); err != nil {
				return nil, err
			}
			arg, err := p.parseAssignment(false)
			if err != nil {
				return nil, err
			}
			args = append(args, p.finish(&ast.SpreadElement{Argument: arg}, sStart))
		} else {
			arg, err := p.parseAssignment(false)
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
		}
		if !p.atPunct(")") {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return args, nil
}

// ---------------------------------------------------------------------------
// Primary expressions
// ---------------------------------------------------------------------------

func (p *parser) parsePrimary() (ast.Node, error) {
	start := p.tok.Start
	switch p.tok.Kind {
	case Ident:
		name := p.tok.Lexeme
		if name == "async" {
			save := p.save()
			if err := p.next(); err != nil {
				return nil, err
			}
			if p.atKeyword("function") && !p.tok.NewlineBefore {
				fn, err := p.parseFunctionExpression(true)
				if err != nil {
					return nil, err
				}
				p.finish(fn, start)
				return fn, nil
			}
			p.restore(save)
		}
		id := ast.NewIdentifier(name)
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.finish(id, start), nil
	case Number:
		lit := &ast.Literal{Kind: ast.LiteralNumber, Raw: p.tok.Lexeme, Number: p.tok.NumberValue}
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.finish(lit, start), nil
	case String:
		lit := &ast.Literal{Kind: ast.LiteralString, Raw: p.tok.Lexeme, String: p.tok.StringValue}
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.finish(lit, start), nil
	case Regex:
		lit := &ast.Literal{Kind: ast.LiteralRegExp, Raw: p.tok.Lexeme}
		lit.Regex.Pattern = p.tok.RegexPattern
		lit.Regex.Flags = p.tok.RegexFlags
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.finish(lit, start), nil
	case NoSubstTemplate, TemplateHead:
		return p.parseTemplateLiteral()
	case PrivateIdent:
		// `#field in obj` (ES2022): treat as identifier reference.
		id := ast.NewIdentifier(p.tok.Lexeme)
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.finish(id, start), nil
	case Keyword:
		switch p.tok.Lexeme {
		case "this":
			if err := p.next(); err != nil {
				return nil, err
			}
			return p.finish(&ast.ThisExpression{}, start), nil
		case "super":
			if err := p.next(); err != nil {
				return nil, err
			}
			return p.finish(&ast.Super{}, start), nil
		case "true", "false":
			lit := &ast.Literal{Kind: ast.LiteralBoolean, Raw: p.tok.Lexeme, Bool: p.tok.Lexeme == "true"}
			if err := p.next(); err != nil {
				return nil, err
			}
			return p.finish(lit, start), nil
		case "null":
			lit := &ast.Literal{Kind: ast.LiteralNull, Raw: "null"}
			if err := p.next(); err != nil {
				return nil, err
			}
			return p.finish(lit, start), nil
		case "function":
			return p.parseFunctionExpression(false)
		case "class":
			return p.parseClassExpression()
		case "new":
			return p.parseNew()
		case "import":
			// Dynamic import `import(...)` or `import.meta`.
			importEnd := p.tok.End
			if err := p.next(); err != nil {
				return nil, err
			}
			if p.atPunct(".") {
				if err := p.next(); err != nil {
					return nil, err
				}
				prop := p.identHere(p.tok.Lexeme)
				if err := p.next(); err != nil {
					return nil, err
				}
				meta := ast.NewIdentifier("import")
				meta.SetSpan(span(start, importEnd))
				return p.finish(&ast.MetaProperty{Meta: meta, Property: prop}, start), nil
			}
			return p.finish(ast.NewIdentifier("import"), start), nil
		case "let", "yield", "await":
			// Sloppy-mode identifier usage.
			id := ast.NewIdentifier(p.tok.Lexeme)
			if err := p.next(); err != nil {
				return nil, err
			}
			return p.finish(id, start), nil
		}
		return nil, p.errorf("unexpected keyword %q", p.tok.Lexeme)
	case Punct:
		switch p.tok.Lexeme {
		case "(":
			return p.parseParenExpression()
		case "[":
			return p.parseArrayLiteral()
		case "{":
			return p.parseObjectLiteral()
		}
	}
	return nil, p.errorf("unexpected token %q", p.tok.Lexeme)
}

// parseParenExpression parses `( expr )` including sequences. Arrow heads are
// recognized earlier by tryParseArrow, so here a parenthesized expression is
// the only possibility.
func (p *parser) parseParenExpression() (ast.Node, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	expr, err := p.parseExpression(false)
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return expr, nil
}

func (p *parser) parseArrayLiteral() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	arr := &ast.ArrayExpression{}
	for !p.atPunct("]") {
		if p.atPunct(",") {
			arr.Elements = append(arr.Elements, nil) // elision
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		if p.atPunct("...") {
			sStart := p.tok.Start
			if err := p.next(); err != nil {
				return nil, err
			}
			arg, err := p.parseAssignment(false)
			if err != nil {
				return nil, err
			}
			arr.Elements = append(arr.Elements, p.finish(&ast.SpreadElement{Argument: arg}, sStart))
		} else {
			el, err := p.parseAssignment(false)
			if err != nil {
				return nil, err
			}
			arr.Elements = append(arr.Elements, el)
		}
		if !p.atPunct("]") {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	return p.finish(arr, start), nil
}

func (p *parser) parseObjectLiteral() (ast.Node, error) {
	start := p.tok.Start
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	obj := &ast.ObjectExpression{}
	for !p.atPunct("}") {
		if p.atPunct("...") {
			sStart := p.tok.Start
			if err := p.next(); err != nil {
				return nil, err
			}
			arg, err := p.parseAssignment(false)
			if err != nil {
				return nil, err
			}
			obj.Properties = append(obj.Properties, p.finish(&ast.SpreadElement{Argument: arg}, sStart))
		} else {
			prop, err := p.parseObjectProperty()
			if err != nil {
				return nil, err
			}
			obj.Properties = append(obj.Properties, prop)
		}
		if !p.atPunct("}") {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return p.finish(obj, start), nil
}

func (p *parser) parseObjectProperty() (ast.Node, error) {
	start := p.tok.Start
	prop := &ast.Property{Kind: "init"}

	isAsync := false
	isGen := false
	if p.atIdentLexeme("async") {
		save := p.save()
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.atPunct("(") || p.atPunct(":") || p.atPunct(",") || p.atPunct("}") || p.atPunct("=") {
			p.restore(save) // plain property named async
		} else {
			isAsync = true
		}
	}
	if p.atPunct("*") {
		isGen = true
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if (p.atIdentLexeme("get") || p.atIdentLexeme("set")) && !isAsync && !isGen {
		accessor := p.tok.Lexeme
		save := p.save()
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.atPunct("(") || p.atPunct(":") || p.atPunct(",") || p.atPunct("}") || p.atPunct("=") {
			p.restore(save) // plain property named get/set
		} else {
			prop.Kind = accessor
		}
	}

	key, computed, err := p.parsePropertyKey()
	if err != nil {
		return nil, err
	}
	prop.Key = key
	prop.Computed = computed

	switch {
	case prop.Kind == "get" || prop.Kind == "set" || p.atPunct("("):
		// Method or accessor.
		fStart := p.tok.Start
		params, err := p.parseParams()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		fn := &ast.FunctionExpression{Params: params, Body: body, Generator: isGen, Async: isAsync}
		p.finish(fn, fStart)
		prop.Value = fn
		if prop.Kind == "init" {
			prop.Method = true
		}
	case p.atPunct(":"):
		if err := p.next(); err != nil {
			return nil, err
		}
		val, err := p.parseAssignment(false)
		if err != nil {
			return nil, err
		}
		prop.Value = val
	default:
		// Shorthand (possibly with default inside a destructuring cover).
		id, ok := key.(*ast.Identifier)
		if !ok {
			return nil, p.errorf("invalid shorthand property")
		}
		prop.Shorthand = true
		if p.atPunct("=") {
			if err := p.next(); err != nil {
				return nil, err
			}
			dflt, err := p.parseAssignment(false)
			if err != nil {
				return nil, err
			}
			ap := &ast.AssignmentPattern{Left: cloneIdent(id), Right: dflt}
			p.finish(ap, start)
			prop.Value = ap
		} else {
			prop.Value = cloneIdent(id)
		}
	}
	return p.finish(prop, start), nil
}

func (p *parser) parseTemplateLiteral() (*ast.TemplateLiteral, error) {
	start := p.tok.Start
	tpl := &ast.TemplateLiteral{}
	if p.at(NoSubstTemplate) {
		el := &ast.TemplateElement{Raw: p.tok.Lexeme, Cooked: p.tok.StringValue, Tail: true}
		el.SetSpan(span(p.tok.Start, p.tok.End))
		if err := p.next(); err != nil {
			return nil, err
		}
		tpl.Quasis = append(tpl.Quasis, el)
		p.finish(tpl, start)
		return tpl, nil
	}
	if !p.at(TemplateHead) {
		return nil, p.errorf("expected template literal")
	}
	head := &ast.TemplateElement{Raw: p.tok.Lexeme, Cooked: p.tok.StringValue}
	head.SetSpan(span(p.tok.Start, p.tok.End))
	tpl.Quasis = append(tpl.Quasis, head)
	if err := p.next(); err != nil {
		return nil, err
	}
	for {
		expr, err := p.parseExpression(false)
		if err != nil {
			return nil, err
		}
		tpl.Expressions = append(tpl.Expressions, expr)
		if !p.atPunct("}") {
			return nil, p.errorf("expected '}' in template substitution, found %q", p.tok.Lexeme)
		}
		tok, err := p.lex.RescanTemplateContinue(p.tok)
		if err != nil {
			return nil, err
		}
		// Replace the '}' with the rescanned template chunk and fetch the
		// token after it.
		p.tok = tok
		el := &ast.TemplateElement{Raw: tok.Lexeme, Cooked: tok.StringValue, Tail: tok.Kind == TemplateTail}
		el.SetSpan(span(tok.Start, tok.End))
		tpl.Quasis = append(tpl.Quasis, el)
		isTail := tok.Kind == TemplateTail
		if err := p.next(); err != nil {
			return nil, err
		}
		if isTail {
			p.finish(tpl, start)
			return tpl, nil
		}
	}
}

// ---------------------------------------------------------------------------
// Expression-to-pattern conversion (destructuring assignment targets)
// ---------------------------------------------------------------------------

func (p *parser) toPattern(expr ast.Node) (ast.Node, error) {
	switch v := expr.(type) {
	case *ast.Identifier, *ast.MemberExpression, *ast.ArrayPattern, *ast.ObjectPattern,
		*ast.AssignmentPattern, *ast.RestElement:
		return expr, nil
	case *ast.ArrayExpression:
		pat := &ast.ArrayPattern{}
		pat.SetSpan(v.Span())
		for i, el := range v.Elements {
			if el == nil {
				pat.Elements = append(pat.Elements, nil)
				continue
			}
			if sp, ok := el.(*ast.SpreadElement); ok {
				if i != len(v.Elements)-1 {
					return nil, p.errorf("rest element must be last")
				}
				arg, err := p.toPattern(sp.Argument)
				if err != nil {
					return nil, err
				}
				rest := &ast.RestElement{Argument: arg}
				rest.SetSpan(sp.Span())
				pat.Elements = append(pat.Elements, rest)
				continue
			}
			conv, err := p.toPattern(el)
			if err != nil {
				return nil, err
			}
			pat.Elements = append(pat.Elements, conv)
		}
		return pat, nil
	case *ast.ObjectExpression:
		pat := &ast.ObjectPattern{}
		pat.SetSpan(v.Span())
		for _, prop := range v.Properties {
			switch pv := prop.(type) {
			case *ast.SpreadElement:
				arg, err := p.toPattern(pv.Argument)
				if err != nil {
					return nil, err
				}
				rest := &ast.RestElement{Argument: arg}
				rest.SetSpan(pv.Span())
				pat.Properties = append(pat.Properties, rest)
			case *ast.Property:
				val, err := p.toPattern(pv.Value)
				if err != nil {
					return nil, err
				}
				np := &ast.Property{
					Key: pv.Key, Value: val, Kind: "init",
					Computed: pv.Computed, Shorthand: pv.Shorthand,
				}
				np.SetSpan(pv.Span())
				pat.Properties = append(pat.Properties, np)
			default:
				return nil, p.errorf("invalid destructuring property")
			}
		}
		return pat, nil
	case *ast.AssignmentExpression:
		if v.Operator != "=" {
			return nil, p.errorf("invalid destructuring default")
		}
		left, err := p.toPattern(v.Left)
		if err != nil {
			return nil, err
		}
		ap := &ast.AssignmentPattern{Left: left, Right: v.Right}
		ap.SetSpan(v.Span())
		return ap, nil
	default:
		return nil, p.errorf("invalid assignment target %s", expr.Type())
	}
}
