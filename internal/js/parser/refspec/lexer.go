package refspec

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/js/ast"
)

// Error is a lexical error with a source position.
type lexError struct {
	Pos ast.Pos
	Msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("lex error at line %d col %d: %s", e.Pos.Line, e.Pos.Column, e.Msg)
}

// Lexer scans JavaScript source into tokens. The zero value is not usable;
// construct with New.
type Lexer struct {
	src  string
	off  int // current byte offset
	line int // current line, 1-based
	col  int // current column, 0-based

	// prev tracks the previous significant token for the regex-vs-division
	// decision.
	prev Token
	// hasPrev is false before the first token.
	hasPrev bool

	// comments collects all comments seen, for token-level features.
	comments []Comment
	// newlineBefore is set while skipping trivia ahead of the next token.
	newlineBefore bool

	// scanned counts tokens produced by Next, including tokens re-scanned
	// after a parser Restore (Restore deliberately does not rewind it).
	// The parser flushes scanned - consumed into the obs registry as
	// lex.tokens_rescanned: the lexing work cover-grammar backtracking
	// repeats.
	scanned int
}

// New returns a lexer over src.
func newLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1}
}

// Comments returns the comments collected so far, in source order.
func (l *Lexer) Comments() []Comment { return l.comments }

// TokensScanned returns the number of tokens Next has produced, counting
// every re-scan after a Restore. Comparing it against the parser's consumed
// token count measures backtracking overhead.
func (l *Lexer) TokensScanned() int { return l.scanned }

func (l *Lexer) pos() ast.Pos {
	return ast.Pos{Offset: l.off, Line: l.line, Column: l.col}
}

func (l *Lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekByteAt(i int) byte {
	if l.off+i >= len(l.src) {
		return 0
	}
	return l.src[l.off+i]
}

func (l *Lexer) peekRune() (rune, int) {
	if l.off >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.off:])
}

// advance consumes n bytes that are known to contain no line terminators.
func (l *Lexer) advance(n int) {
	l.off += n
	l.col += n
}

// advanceRune consumes one rune, tracking line/column across terminators.
//
//jslint:hotpath
func (l *Lexer) advanceRune() rune {
	r, size := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += size
	if isLineTerminator(r) {
		// Treat \r\n as a single terminator.
		if r == '\r' && l.peekByte() == '\n' {
			l.off++
		}
		l.line++
		l.col = 0
	} else {
		l.col += size
	}
	return r
}

func isLineTerminator(r rune) bool {
	return r == '\n' || r == '\r' || r == '\u2028' || r == '\u2029'
}

func isWhitespace(r rune) bool {
	switch r {
	case ' ', '\t', '\v', '\f', '\u00a0', '\ufeff':
		return true
	}
	return r != '\n' && r != '\r' && !isLineTerminator(r) && unicode.IsSpace(r)
}

func isIdentStart(r rune) bool {
	return r == '$' || r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '$' || r == '_' || r == '\u200c' || r == '\u200d' ||
		unicode.IsLetter(r) || unicode.IsDigit(r) ||
		unicode.Is(unicode.Mn, r) || unicode.Is(unicode.Mc, r) || unicode.Is(unicode.Pc, r)
}

// skipTrivia consumes whitespace and comments, recording whether a line
// terminator was crossed. It runs once per token over every byte of trivia,
// which makes it the lexer's inner loop: nothing here may allocate beyond the
// amortized growth of the comments slice (and the error construction on the
// unterminated-comment path, which aborts the scan anyway).
//
//jslint:hotpath
func (l *Lexer) skipTrivia() error {
	l.newlineBefore = false
	for l.off < len(l.src) {
		r, _ := l.peekRune()
		switch {
		case isLineTerminator(r):
			l.newlineBefore = true
			l.advanceRune()
		case isWhitespace(r):
			l.advanceRune()
		case r == '/' && l.peekByteAt(1) == '/':
			start := l.pos()
			l.advance(2)
			textStart := l.off
			for l.off < len(l.src) {
				r2, _ := l.peekRune()
				if isLineTerminator(r2) {
					break
				}
				l.advanceRune()
			}
			l.comments = append(l.comments, Comment{
				Span: ast.Span{Start: start, End: l.pos()},
				Text: l.src[textStart:l.off],
			})
		case r == '<' && strings.HasPrefix(l.src[l.off:], "<!--"):
			// HTML open comment: browsers treat the rest of the line as a
			// comment (sloppy-mode web reality).
			start := l.pos()
			l.advance(4)
			textStart := l.off
			for l.off < len(l.src) {
				r2, _ := l.peekRune()
				if isLineTerminator(r2) {
					break
				}
				l.advanceRune()
			}
			l.comments = append(l.comments, Comment{
				Span: ast.Span{Start: start, End: l.pos()},
				Text: l.src[textStart:l.off],
			})
		case r == '-' && l.newlineBefore && strings.HasPrefix(l.src[l.off:], "-->"):
			// HTML close comment at line start: rest of line is a comment.
			start := l.pos()
			l.advance(3)
			textStart := l.off
			for l.off < len(l.src) {
				r2, _ := l.peekRune()
				if isLineTerminator(r2) {
					break
				}
				l.advanceRune()
			}
			l.comments = append(l.comments, Comment{
				Span: ast.Span{Start: start, End: l.pos()},
				Text: l.src[textStart:l.off],
			})
		case r == '/' && l.peekByteAt(1) == '*':
			start := l.pos()
			l.advance(2)
			textStart := l.off
			closed := false
			for l.off < len(l.src) {
				if l.peekByte() == '*' && l.peekByteAt(1) == '/' {
					closed = true
					break
				}
				r2 := l.advanceRune()
				if isLineTerminator(r2) {
					l.newlineBefore = true
				}
			}
			if !closed {
				return &lexError{Pos: start, Msg: "unterminated block comment"} //jslint:ignore hotpath-noalloc error path terminates the scan
			}
			text := l.src[textStart:l.off]
			l.advance(2)
			l.comments = append(l.comments, Comment{
				Span:  ast.Span{Start: start, End: l.pos()},
				Text:  text,
				Block: true,
			})
		default:
			return nil
		}
	}
	return nil
}

// State is an opaque snapshot of lexer progress, used by the parser for
// bounded backtracking (e.g. arrow-function cover grammar).
type State struct {
	off, line, col int
	prev           Token
	hasPrev        bool
	numComments    int
}

// Save captures the current lexer state.
func (l *Lexer) Save() State {
	return State{
		off: l.off, line: l.line, col: l.col,
		prev: l.prev, hasPrev: l.hasPrev,
		numComments: len(l.comments),
	}
}

// Restore rewinds the lexer to a previously saved state.
func (l *Lexer) Restore(s State) {
	l.off, l.line, l.col = s.off, s.line, s.col
	l.prev, l.hasPrev = s.prev, s.hasPrev
	l.comments = l.comments[:s.numComments]
}

// Next returns the next token. At end of input it returns an EOF token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipTrivia(); err != nil {
		return Token{}, err
	}
	start := l.pos()
	if l.off >= len(l.src) {
		tok := Token{Kind: EOF, Start: start, End: start, NewlineBefore: l.newlineBefore}
		return tok, nil
	}

	r, _ := l.peekRune()
	var tok Token
	var err error
	switch {
	case isIdentStart(r) || r == '\\':
		tok, err = l.scanIdentOrKeyword(start)
	case r >= '0' && r <= '9':
		tok, err = l.scanNumber(start)
	case r == '.' && l.peekByteAt(1) >= '0' && l.peekByteAt(1) <= '9':
		tok, err = l.scanNumber(start)
	case r == '"' || r == '\'':
		tok, err = l.scanString(start, byte(r))
	case r == '`':
		tok, err = l.scanTemplate(start, true)
	case r == '/' && l.regexAllowed():
		tok, err = l.scanRegex(start)
	case r == '#':
		tok, err = l.scanPrivateIdent(start)
	default:
		tok, err = l.scanPunct(start)
	}
	if err != nil {
		return Token{}, err
	}
	tok.NewlineBefore = l.newlineBefore
	l.prev = tok
	l.hasPrev = true
	l.scanned++
	return tok, nil
}

// regexAllowed applies the standard previous-token heuristic for deciding
// whether a leading '/' starts a regular expression or a division operator.
// It runs on every '/' the lexer meets, so it must stay branch-only.
//
//jslint:hotpath
func (l *Lexer) regexAllowed() bool {
	if !l.hasPrev {
		return true
	}
	switch l.prev.Kind {
	case Ident, Number, String, Regex, NoSubstTemplate, TemplateTail, PrivateIdent:
		return false
	case Keyword:
		switch l.prev.Lexeme {
		case "this", "super", "true", "false", "null":
			return false
		}
		return true
	case Punct:
		switch l.prev.Lexeme {
		case ")", "]", "}", "++", "--":
			return false
		}
		return true
	default:
		return true
	}
}

func (l *Lexer) scanIdentOrKeyword(start ast.Pos) (Token, error) {
	var sb strings.Builder
	for l.off < len(l.src) {
		r, _ := l.peekRune()
		if r == '\\' {
			// Unicode escape in identifier: \uXXXX or \u{...}.
			if l.peekByteAt(1) != 'u' {
				return Token{}, &lexError{Pos: l.pos(), Msg: "bad escape in identifier"}
			}
			l.advance(2)
			cp, err := l.scanUnicodeEscape()
			if err != nil {
				return Token{}, err
			}
			// The escaped codepoint must itself be a legal identifier
			// character.
			if sb.Len() == 0 && !isIdentStart(cp) || sb.Len() > 0 && !isIdentPart(cp) {
				return Token{}, &lexError{Pos: start, Msg: fmt.Sprintf("escape %q is not a valid identifier character", cp)}
			}
			sb.WriteRune(cp)
			continue
		}
		if sb.Len() == 0 && !isIdentStart(r) {
			break
		}
		if sb.Len() > 0 && !isIdentPart(r) {
			break
		}
		sb.WriteRune(r)
		l.advanceRune()
	}
	name := sb.String()
	if name == "" {
		return Token{}, &lexError{Pos: start, Msg: "expected identifier"}
	}
	kind := Ident
	if keywords[name] {
		kind = Keyword
	}
	return Token{Kind: kind, Lexeme: name, StringValue: name, Start: start, End: l.pos()}, nil
}

func (l *Lexer) scanPrivateIdent(start ast.Pos) (Token, error) {
	l.advance(1) // '#'
	tok, err := l.scanIdentOrKeyword(l.pos())
	if err != nil {
		return Token{}, err
	}
	tok.Kind = PrivateIdent
	tok.Lexeme = "#" + tok.Lexeme
	tok.Start = start
	return tok, nil
}

// scanUnicodeEscape parses the part after \u: either XXXX or {X...}.
func (l *Lexer) scanUnicodeEscape() (rune, error) {
	if l.peekByte() == '{' {
		l.advance(1)
		startOff := l.off
		for l.off < len(l.src) && l.peekByte() != '}' {
			l.advance(1)
		}
		if l.off >= len(l.src) {
			return 0, &lexError{Pos: l.pos(), Msg: "unterminated unicode escape"}
		}
		v, err := strconv.ParseUint(l.src[startOff:l.off], 16, 32)
		if err != nil {
			return 0, &lexError{Pos: l.pos(), Msg: "bad unicode escape"}
		}
		l.advance(1) // '}'
		return rune(v), nil
	}
	if l.off+4 > len(l.src) {
		return 0, &lexError{Pos: l.pos(), Msg: "truncated unicode escape"}
	}
	v, err := strconv.ParseUint(l.src[l.off:l.off+4], 16, 32)
	if err != nil {
		return 0, &lexError{Pos: l.pos(), Msg: "bad unicode escape"}
	}
	l.advance(4)
	return rune(v), nil
}

func isHexDigit(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

func (l *Lexer) scanNumber(start ast.Pos) (Token, error) {
	startOff := l.off
	digits := func(pred func(byte) bool) {
		for l.off < len(l.src) {
			b := l.peekByte()
			if b == '_' && l.off+1 < len(l.src) && pred(l.src[l.off+1]) {
				l.advance(1)
				continue
			}
			if !pred(b) {
				break
			}
			l.advance(1)
		}
	}
	isDec := func(b byte) bool { return b >= '0' && b <= '9' }

	if l.peekByte() == '0' && l.off+1 < len(l.src) {
		switch l.src[l.off+1] {
		case 'x', 'X':
			l.advance(2)
			digits(isHexDigit)
			return l.finishNumber(start, startOff, 16)
		case 'o', 'O':
			l.advance(2)
			digits(func(b byte) bool { return b >= '0' && b <= '7' })
			return l.finishNumber(start, startOff, 8)
		case 'b', 'B':
			l.advance(2)
			digits(func(b byte) bool { return b == '0' || b == '1' })
			return l.finishNumber(start, startOff, 2)
		}
		// Legacy octal: 0 followed by octal digits only.
		if b := l.src[l.off+1]; b >= '0' && b <= '7' {
			probe := l.off + 1
			legacy := true
			for probe < len(l.src) && isDec(l.src[probe]) {
				if l.src[probe] > '7' {
					legacy = false
				}
				probe++
			}
			if probe < len(l.src) && (l.src[probe] == '.' || l.src[probe] == 'e' || l.src[probe] == 'E') {
				legacy = false
			}
			if legacy {
				l.advance(1)
				digits(func(b byte) bool { return b >= '0' && b <= '7' })
				return l.finishNumber(start, startOff, 8)
			}
		}
	}

	digits(isDec)
	if l.peekByte() == '.' {
		l.advance(1)
		digits(isDec)
	}
	if b := l.peekByte(); b == 'e' || b == 'E' {
		probe := l.off + 1
		if probe < len(l.src) && (l.src[probe] == '+' || l.src[probe] == '-') {
			probe++
		}
		if probe < len(l.src) && isDec(l.src[probe]) {
			l.advance(probe - l.off)
			digits(isDec)
		}
	}
	// BigInt suffix: accept and ignore the 'n'.
	if l.peekByte() == 'n' {
		l.advance(1)
	}
	return l.finishNumber(start, startOff, 10)
}

func (l *Lexer) finishNumber(start ast.Pos, startOff, base int) (Token, error) {
	raw := l.src[startOff:l.off]
	clean := strings.ReplaceAll(strings.TrimSuffix(raw, "n"), "_", "")
	var v float64
	var err error
	switch base {
	case 10:
		v, err = strconv.ParseFloat(clean, 64)
	default:
		var u uint64
		prefix := clean
		if len(prefix) >= 2 && prefix[0] == '0' && !isDecimalDigit(prefix[1]) {
			prefix = prefix[2:]
		} else if base == 8 {
			prefix = strings.TrimPrefix(prefix, "0")
		}
		if prefix == "" {
			prefix = "0"
		}
		u, err = strconv.ParseUint(prefix, base, 64)
		v = float64(u)
	}
	if err != nil {
		return Token{}, &lexError{Pos: start, Msg: fmt.Sprintf("bad number literal %q", raw)}
	}
	return Token{Kind: Number, Lexeme: raw, NumberValue: v, Start: start, End: l.pos()}, nil
}

func isDecimalDigit(b byte) bool { return b >= '0' && b <= '9' }

func (l *Lexer) scanString(start ast.Pos, quote byte) (Token, error) {
	startOff := l.off
	l.advance(1)
	var sb strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, &lexError{Pos: start, Msg: "unterminated string literal"}
		}
		b := l.peekByte()
		if b == quote {
			l.advance(1)
			break
		}
		if b == '\\' {
			l.advance(1)
			if err := l.scanEscape(&sb); err != nil {
				return Token{}, err
			}
			continue
		}
		r, _ := l.peekRune()
		if r == '\n' || r == '\r' {
			return Token{}, &lexError{Pos: l.pos(), Msg: "newline in string literal"}
		}
		sb.WriteRune(r)
		l.advanceRune()
	}
	return Token{
		Kind:        String,
		Lexeme:      l.src[startOff:l.off],
		StringValue: sb.String(),
		Start:       start,
		End:         l.pos(),
	}, nil
}

// scanEscape decodes one escape sequence after the backslash.
func (l *Lexer) scanEscape(sb *strings.Builder) error {
	if l.off >= len(l.src) {
		return &lexError{Pos: l.pos(), Msg: "truncated escape sequence"}
	}
	r, _ := l.peekRune()
	if isLineTerminator(r) {
		// Line continuation: consumed, contributes nothing.
		l.advanceRune()
		return nil
	}
	switch r {
	case 'n':
		sb.WriteByte('\n')
	case 't':
		sb.WriteByte('\t')
	case 'r':
		sb.WriteByte('\r')
	case 'b':
		sb.WriteByte('\b')
	case 'f':
		sb.WriteByte('\f')
	case 'v':
		sb.WriteByte('\v')
	case '0':
		// \0 not followed by a digit is NUL; otherwise legacy octal.
		if !isDecimalDigit(l.peekByteAt(1)) {
			sb.WriteByte(0)
			l.advance(1)
			return nil
		}
		return l.scanOctalEscape(sb)
	case '1', '2', '3', '4', '5', '6', '7':
		return l.scanOctalEscape(sb)
	case 'x':
		l.advance(1)
		if l.off+2 > len(l.src) || !isHexDigit(l.src[l.off]) || !isHexDigit(l.src[l.off+1]) {
			return &lexError{Pos: l.pos(), Msg: "bad hex escape"}
		}
		v, _ := strconv.ParseUint(l.src[l.off:l.off+2], 16, 16)
		sb.WriteRune(rune(v))
		l.advance(2)
		return nil
	case 'u':
		l.advance(1)
		cp, err := l.scanUnicodeEscape()
		if err != nil {
			return err
		}
		sb.WriteRune(cp)
		return nil
	default:
		sb.WriteRune(r)
	}
	l.advanceRune()
	return nil
}

func (l *Lexer) scanOctalEscape(sb *strings.Builder) error {
	v := 0
	for i := 0; i < 3 && l.off < len(l.src); i++ {
		b := l.peekByte()
		if b < '0' || b > '7' {
			break
		}
		next := v*8 + int(b-'0')
		if next > 255 {
			break
		}
		v = next
		l.advance(1)
	}
	sb.WriteRune(rune(v))
	return nil
}

// scanTemplate scans a template chunk. When head is true the scanner starts
// at a backtick; otherwise it starts at the '}' that closes a substitution.
func (l *Lexer) scanTemplate(start ast.Pos, head bool) (Token, error) {
	startOff := l.off
	l.advance(1) // '`' or '}'
	var sb strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, &lexError{Pos: start, Msg: "unterminated template literal"}
		}
		b := l.peekByte()
		if b == '`' {
			l.advance(1)
			kind := TemplateTail
			if head {
				kind = NoSubstTemplate
			}
			return Token{
				Kind:        kind,
				Lexeme:      l.src[startOff:l.off],
				StringValue: sb.String(),
				Start:       start,
				End:         l.pos(),
			}, nil
		}
		if b == '$' && l.peekByteAt(1) == '{' {
			l.advance(2)
			kind := TemplateMiddle
			if head {
				kind = TemplateHead
			}
			return Token{
				Kind:        kind,
				Lexeme:      l.src[startOff:l.off],
				StringValue: sb.String(),
				Start:       start,
				End:         l.pos(),
			}, nil
		}
		if b == '\\' {
			l.advance(1)
			if err := l.scanEscape(&sb); err != nil {
				return Token{}, err
			}
			continue
		}
		r := l.advanceRune()
		sb.WriteRune(r)
	}
}

// RescanTemplateContinue is called by the parser when, inside a template
// substitution, it has consumed a '}' token that actually continues the
// template. The lexer rewinds to the '}' and scans a TemplateMiddle or
// TemplateTail token from there.
func (l *Lexer) RescanTemplateContinue(closeBrace Token) (Token, error) {
	l.off = closeBrace.Start.Offset
	l.line = closeBrace.Start.Line
	l.col = closeBrace.Start.Column
	tok, err := l.scanTemplate(closeBrace.Start, false)
	if err != nil {
		return Token{}, err
	}
	tok.NewlineBefore = closeBrace.NewlineBefore
	l.prev = tok
	l.hasPrev = true
	return tok, nil
}

func (l *Lexer) scanRegex(start ast.Pos) (Token, error) {
	startOff := l.off
	l.advance(1) // '/'
	inClass := false
	for {
		if l.off >= len(l.src) {
			return Token{}, &lexError{Pos: start, Msg: "unterminated regular expression"}
		}
		r, _ := l.peekRune()
		if isLineTerminator(r) {
			return Token{}, &lexError{Pos: l.pos(), Msg: "newline in regular expression"}
		}
		if r == '\\' {
			l.advance(1)
			if l.off < len(l.src) {
				l.advanceRune()
			}
			continue
		}
		switch r {
		case '[':
			inClass = true
		case ']':
			inClass = false
		case '/':
			if !inClass {
				patEnd := l.off
				l.advance(1)
				flagsStart := l.off
				for l.off < len(l.src) {
					fr, _ := l.peekRune()
					if !isIdentPart(fr) {
						break
					}
					l.advanceRune()
				}
				return Token{
					Kind:         Regex,
					Lexeme:       l.src[startOff:l.off],
					RegexPattern: l.src[startOff+1 : patEnd],
					RegexFlags:   l.src[flagsStart:l.off],
					Start:        start,
					End:          l.pos(),
				}, nil
			}
		}
		l.advanceRune()
	}
}

// punctsByFirst groups multi-character punctuators by first byte, longest
// first, so scanPunct only tests candidates sharing the lead byte.
var punctsByFirst = map[byte][]string{
	'>': {">>>=", ">>>", ">>=", ">=", ">>", ">"},
	'.': {"...", "."},
	'=': {"===", "=>", "==", "="},
	'!': {"!==", "!=", "!"},
	'*': {"**=", "*=", "**", "*"},
	'<': {"<<=", "<=", "<<", "<"},
	'&': {"&&=", "&&", "&=", "&"},
	'|': {"||=", "||", "|=", "|"},
	'?': {"??=", "?.", "??", "?"},
	'+': {"++", "+=", "+"},
	'-': {"--", "-=", "-"},
	'/': {"/=", "/"},
	'%': {"%=", "%"},
	'^': {"^=", "^"},
	'{': {"{"}, '}': {"}"}, '(': {"("}, ')': {")"}, '[': {"["}, ']': {"]"},
	';': {";"}, ',': {","}, '~': {"~"}, ':': {":"}, '@': {"@"},
}

func (l *Lexer) scanPunct(start ast.Pos) (Token, error) {
	rest := l.src[l.off:]
	if len(rest) > 0 {
		for _, p := range punctsByFirst[rest[0]] {
			if strings.HasPrefix(rest, p) {
				// `?.` followed by a digit is a ternary, e.g. `a?.5:b`.
				if p == "?." && len(rest) > 2 && isDecimalDigit(rest[2]) {
					continue
				}
				l.advance(len(p))
				return Token{Kind: Punct, Lexeme: p, Start: start, End: l.pos()}, nil
			}
		}
	}
	r, _ := l.peekRune()
	return Token{}, &lexError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", r)}
}
