package parser

import (
	"strings"
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/printer"
	"repro/internal/js/walker"
)

// roundTrip parses src, prints it, reparses the output, and checks that the
// two compact prints agree (a fixed point of parse∘print).
func roundTrip(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	out := printer.Compact(prog)
	prog2, err := ParseProgram(out)
	if err != nil {
		t.Fatalf("reparse printed output %q (from %q): %v", out, src, err)
	}
	out2 := printer.Compact(prog2)
	if out != out2 {
		t.Fatalf("print not a fixed point:\n src: %q\n 1st: %q\n 2nd: %q", src, out, out2)
	}
	// Pretty output must parse too.
	pretty := printer.Pretty(prog)
	if _, err := ParseProgram(pretty); err != nil {
		t.Fatalf("pretty output does not reparse: %v\n%s", err, pretty)
	}
	return prog
}

func TestRoundTripStatements(t *testing.T) {
	tests := []string{
		`var x = 1;`,
		`let x = 1, y = 2;`,
		`const {a, b: c, d = 3} = obj;`,
		`var [x, , y, ...rest] = arr;`,
		`if (a) b(); else if (c) d(); else e();`,
		`for (var i = 0; i < 10; i++) { total += i; }`,
		`for (;;) break;`,
		`for (var k in obj) delete obj[k];`,
		`for (const v of list) console.log(v);`,
		`while (x > 0) x--;`,
		`do { x++; } while (x < 5);`,
		"switch (v) {\ncase 1: a(); break;\ncase 2:\ndefault: b();\n}",
		`try { risky(); } catch (e) { handle(e); } finally { cleanup(); }`,
		`try { risky(); } catch { recover(); }`,
		`label: for (;;) { continue label; }`,
		`throw new Error("boom");`,
		`debugger;`,
		`with (Math) { x = cos(PI); }`,
		`;`,
		`function f(a, b = 1, ...rest) { return a + b; }`,
		`async function g() { await h(); }`,
		`function* gen() { yield 1; yield* other(); }`,
		`class A extends B { constructor(x) { super(x); } static m() {} get v() { return 1; } set v(x) {} }`,
		`import "side-effect";`,
		`import def from "mod";`,
		`import * as ns from "mod";`,
		`import def, {a, b as c} from "mod";`,
		`export {a, b as c};`,
		`export default function () {};`,
		`export default 42;`,
		`export const x = 1;`,
		`export * from "mod";`,
	}
	for _, src := range tests {
		t.Run(src, func(t *testing.T) { roundTrip(t, src) })
	}
}

func TestRoundTripExpressions(t *testing.T) {
	tests := []string{
		`x = a + b * c - d / e % f;`,
		`x = (a + b) * c;`,
		`x = a ** b ** c;`,
		`x = (a ** b) ** c;`,
		`x = a === b ? c : d;`,
		`x = a ?? b ?? c;`,
		`x = a && b || c;`,
		`x = a | b ^ c & d;`,
		`x = a << 2 >> 3 >>> 4;`,
		`x = -a + +b - ~c + !d;`,
		`x = typeof a;`,
		`x = void 0;`,
		`delete obj.prop;`,
		`x = a in b;`,
		`x = a instanceof B;`,
		`i++, j--, ++k, --l;`,
		`x = obj.a.b.c;`,
		`x = obj["key"]["other"];`,
		`x = obj?.a?.b;`,
		`x = fn?.(1, 2);`,
		`x = obj?.["k"];`,
		`f(a, b, ...rest);`,
		`new Date();`,
		`new Map([[1, 2]]);`,
		`x = new a.b.C(1);`,
		`x = new (getClass())(1);`,
		`x = [1, 2, , 3, ...more];`,
		`x = {a: 1, "b": 2, 3: c, [k]: v, short, m() {}, get g() { return 1; }, ...spread};`,
		`x = function named() { return named; };`,
		`x = function () {};`,
		`x = () => 1;`,
		`x = y => y * 2;`,
		`x = (a, b) => { return a + b; };`,
		`x = (a = 1, ...rest) => rest.length + a;`,
		`x = async () => await p;`,
		`x = async y => y;`,
		`x = class Named extends Base { m() {} };`,
		"x = `plain`;",
		"x = `a${b}c${d}e`;",
		"x = tag`tpl ${v}`;",
		"x = `nested ${`inner ${deep}`}`;",
		`x = /ab+c/gi.test(s);`,
		`x = s.replace(/x\/y/, "z");`,
		`x = a, b, c;`,
		`(function () { go(); })();`,
		`(() => start())();`,
		`x = this.that;`,
		`x = 0x1f + 0b101 + 0o17 + 1e3 + 1.5e-2 + .5;`,
		`x = "quotes \" and ' and \n and \t and \\ and é and \x41";`,
		`({a, b} = c);`,
		`[a, b] = [b, a];`,
		`x = a?.b ?? c;`,
		`x = (a, b);`,
		`x = 1000000;`,
		`if (x) { ({y} = z); }`,
		`x = a ? b ? c : d : e;`,
		`x = (a = b) => a;`,
		`obj.if = 1;`,
		`x = obj.class.function;`,
		`x = {var: 1, new: 2, delete: 3};`,
		`async()`,
		`x = async(1, 2);`,
	}
	for _, src := range tests {
		t.Run(src, func(t *testing.T) { roundTrip(t, src) })
	}
}

func TestASI(t *testing.T) {
	tests := []string{
		"var x = 1\nvar y = 2",
		"a()\nb()",
		"return", // at top level our parser is lenient inside functions only; keep in function
	}
	_ = tests
	srcs := []string{
		"var x = 1\nvar y = 2",
		"a()\nb()",
		"function f() {\n  return\n}",
		"function f() {\n  return 1\n}",
		"x = 1\n++y",
		"do x++; while (x < 5)\nf()",
	}
	for _, src := range srcs {
		t.Run(src, func(t *testing.T) { roundTrip(t, src) })
	}
}

func TestASIRestrictedReturn(t *testing.T) {
	prog, err := ParseProgram("function f() {\n  return\n  1\n}")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := prog.Body[0].(*ast.FunctionDeclaration)
	ret, ok := fn.Body.Body[0].(*ast.ReturnStatement)
	if !ok {
		t.Fatalf("expected ReturnStatement, got %s", fn.Body.Body[0].Type())
	}
	if ret.Argument != nil {
		t.Fatal("newline after return must terminate the statement")
	}
	if len(fn.Body.Body) != 2 {
		t.Fatalf("expected 2 statements in body, got %d", len(fn.Body.Body))
	}
}

func TestASIRestrictedPostfix(t *testing.T) {
	prog, err := ParseProgram("x\n++y")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Body) != 2 {
		t.Fatalf("expected 2 statements, got %d", len(prog.Body))
	}
	second := prog.Body[1].(*ast.ExpressionStatement).Expression
	upd, ok := second.(*ast.UpdateExpression)
	if !ok || !upd.Prefix {
		t.Fatal("++y must parse as a prefix update of the next statement")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`var = 1;`,
		`if (a {}`,
		`function () {}`, // function declaration needs a name... we allow anonymous only in export default
		`x = ;`,
		`"unterminated`,
		`x = 1 +`,
		`try {}`,
		"`unterminated template",
		`/* unterminated comment`,
		`a b`,
	}
	for _, src := range bad {
		t.Run(src, func(t *testing.T) {
			if _, err := ParseProgram(src); err == nil {
				t.Fatalf("expected error for %q", src)
			}
		})
	}
}

func TestNodeShapes(t *testing.T) {
	prog := roundTrip(t, `var total = items.reduce((acc, it) => acc + it.price, 0);`)
	decl := prog.Body[0].(*ast.VariableDeclaration)
	if decl.Kind != "var" {
		t.Fatalf("kind = %q", decl.Kind)
	}
	call := decl.Declarations[0].Init.(*ast.CallExpression)
	member := call.Callee.(*ast.MemberExpression)
	if member.Computed {
		t.Fatal("reduce access must be dot notation")
	}
	if id := member.Property.(*ast.Identifier); id.Name != "reduce" {
		t.Fatalf("property = %q", id.Name)
	}
	if len(call.Arguments) != 2 {
		t.Fatalf("arguments = %d", len(call.Arguments))
	}
	if _, ok := call.Arguments[0].(*ast.ArrowFunctionExpression); !ok {
		t.Fatalf("first arg = %s", call.Arguments[0].Type())
	}
}

func TestTernaryVsOptionalChain(t *testing.T) {
	prog := roundTrip(t, `x = a?.5:b;`)
	expr := prog.Body[0].(*ast.ExpressionStatement).Expression.(*ast.AssignmentExpression)
	if _, ok := expr.Right.(*ast.ConditionalExpression); !ok {
		t.Fatalf("a?.5:b must be a ternary, got %s", expr.Right.Type())
	}
}

func TestDirectives(t *testing.T) {
	prog, err := ParseProgram("\"use strict\";\nvar x = 1;")
	if err != nil {
		t.Fatal(err)
	}
	es := prog.Body[0].(*ast.ExpressionStatement)
	if es.Directive != "use strict" {
		t.Fatalf("directive = %q", es.Directive)
	}
}

func TestTokensCollected(t *testing.T) {
	res, err := Parse(`var x = 1 + 2; // done`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tokens) < 6 {
		t.Fatalf("expected tokens, got %d", len(res.Tokens))
	}
	if len(res.Comments) != 1 {
		t.Fatalf("expected 1 comment, got %d", len(res.Comments))
	}
	if res.Comments[0].Text != " done" {
		t.Fatalf("comment text = %q", res.Comments[0].Text)
	}
}

func TestDeeplyNestedGuard(t *testing.T) {
	src := strings.Repeat("(", 5000) + "1" + strings.Repeat(")", 5000)
	if _, err := ParseProgram("x = " + src + ";"); err == nil {
		t.Fatal("expected depth-guard error")
	}
}

func TestSpansMonotonic(t *testing.T) {
	prog := roundTrip(t, "function f(a) {\n  return a * 2;\n}\nvar r = f(21);")
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		sp := n.Span()
		if sp.End.Offset < sp.Start.Offset {
			t.Fatalf("%s: end < start (%d < %d)", n.Type(), sp.End.Offset, sp.Start.Offset)
		}
		return true
	})
}

func TestLargeInputPerformance(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		sb.WriteString("function f")
		sb.WriteString(strings.Repeat("x", 3))
		sb.WriteString("(a, b) { return a + b * 2; }\n")
	}
	if _, err := ParseProgram(sb.String()); err != nil {
		t.Fatal(err)
	}
}

func TestClassFields(t *testing.T) {
	prog := roundTrip(t, `class Counter {
  count = 0;
  static limit = 100;
  #hidden;
  label = "ticks";
  constructor() { this.count = 0; }
  tick() { this.count++; }
}`)
	cls := prog.Body[0].(*ast.ClassDeclaration)
	var fields, methods int
	for _, m := range cls.Body.Body {
		switch m.(type) {
		case *ast.PropertyDefinition:
			fields++
		case *ast.MethodDefinition:
			methods++
		}
	}
	if fields != 4 {
		t.Fatalf("fields = %d, want 4", fields)
	}
	if methods != 2 {
		t.Fatalf("methods = %d, want 2", methods)
	}
	var staticField *ast.PropertyDefinition
	for _, m := range cls.Body.Body {
		if f, ok := m.(*ast.PropertyDefinition); ok && f.Static {
			staticField = f
		}
	}
	if staticField == nil {
		t.Fatal("static field missing")
	}
}

// TestParsesCounter pins the parse-once test hook: every Parse entry point
// bumps the process-wide counter exactly once, including failed parses.
func TestParsesCounter(t *testing.T) {
	before := Parses()
	if _, err := ParseNoTokens("var a = 1;"); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse("a + b;"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseNoTokens("function ( {{{"); err == nil {
		t.Fatal("expected parse error")
	}
	if delta := Parses() - before; delta != 3 {
		t.Fatalf("Parses delta = %d, want 3", delta)
	}
}
