// External test package: the poisoning tests compare full Results through
// the printer and walker, which an in-package test could also do, but the
// external package proves the exported Session surface alone is enough.
package parser_test

import (
	"reflect"
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/printer"
	"repro/internal/js/walker"
	"repro/internal/obs"
)

// poisonA leans on every piece of pooled state: comments, the arrow-head
// memo table, template rescans, private names, and a deep token stream.
const poisonA = `// comment A
const f = (a, b) => a + b;
let t = ` + "`x${f(1, 2)}y`" + `;
class K { #p = 1; get v() { return this.#p + f(3, 4); } }
`

// poisonB is structurally different from poisonA so any leaked state shows.
const poisonB = `/* comment B */
function g(n) { return n * 2; }
var arr = [1, 2, 3].map((x) => x + 1);
`

func streamOf(prog *ast.Program) []ast.Kind {
	var out []ast.Kind
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		out = append(out, n.NodeKind())
		return true
	})
	return out
}

// assertSameResult requires got to be bit-identical to want: same printed
// program, same node-kind stream and spans, same tokens, comments, and
// counts.
func assertSameResult(t *testing.T, want, got *parser.Result) {
	t.Helper()
	if w, g := printer.Compact(want.Program), printer.Compact(got.Program); w != g {
		t.Fatalf("printed output differs:\nfresh:  %s\nreused: %s", w, g)
	}
	if w, g := streamOf(want.Program), streamOf(got.Program); !reflect.DeepEqual(w, g) {
		t.Fatalf("node streams differ:\nfresh:  %v\nreused: %v", w, g)
	}
	if want.NumTokens != got.NumTokens {
		t.Fatalf("NumTokens = %d, want %d", got.NumTokens, want.NumTokens)
	}
	if !reflect.DeepEqual(want.Tokens, got.Tokens) {
		t.Fatalf("token streams differ:\nfresh:  %v\nreused: %v", want.Tokens, got.Tokens)
	}
	if !reflect.DeepEqual(want.Comments, got.Comments) {
		t.Fatalf("comments differ:\nfresh:  %v\nreused: %v", want.Comments, got.Comments)
	}
}

// TestSessionReuseNotPoisoned scans file A and then file B through one
// pooled session and requires B's result to be bit-identical to a fresh
// parse: nothing from A — tokens, comments, memo entries, lexer state — may
// leak into B.
func TestSessionReuseNotPoisoned(t *testing.T) {
	fresh, err := parser.NewSession().Parse(poisonB)
	if err != nil {
		t.Fatalf("fresh parse: %v", err)
	}
	s := parser.NewSession()
	if _, err := s.Parse(poisonA); err != nil {
		t.Fatalf("parse A: %v", err)
	}
	reused, err := s.Parse(poisonB)
	if err != nil {
		t.Fatalf("reused parse B: %v", err)
	}
	assertSameResult(t, fresh, reused)
}

// TestSessionReuseAfterError: a failed parse must not poison the session
// either — reset happens on entry, not on the success path.
func TestSessionReuseAfterError(t *testing.T) {
	s := parser.NewSession()
	if _, err := s.Parse("(a, b)\n@"); err == nil {
		t.Fatal("malformed input must fail to parse")
	}
	reused, err := s.Parse(poisonB)
	if err != nil {
		t.Fatalf("reused parse B: %v", err)
	}
	fresh, err := parser.NewSession().Parse(poisonB)
	if err != nil {
		t.Fatalf("fresh parse: %v", err)
	}
	assertSameResult(t, fresh, reused)
}

// TestSessionReuseAcrossCollectModes: flipping between ParseNoTokens and
// Parse on one session must not leave a stale token slice behind.
func TestSessionReuseAcrossCollectModes(t *testing.T) {
	s := parser.NewSession()
	if _, err := s.ParseNoTokens(poisonA); err != nil {
		t.Fatalf("ParseNoTokens A: %v", err)
	}
	reused, err := s.Parse(poisonB)
	if err != nil {
		t.Fatalf("reused parse B: %v", err)
	}
	fresh, err := parser.NewSession().Parse(poisonB)
	if err != nil {
		t.Fatalf("fresh parse: %v", err)
	}
	assertSameResult(t, fresh, reused)
	if len(reused.Tokens) == 0 {
		t.Fatal("Parse after ParseNoTokens returned no tokens")
	}
	noTok, err := s.ParseNoTokens(poisonB)
	if err != nil {
		t.Fatalf("ParseNoTokens B: %v", err)
	}
	if noTok.Tokens != nil {
		t.Fatal("ParseNoTokens after Parse leaked a token slice")
	}
	if noTok.NumTokens != fresh.NumTokens {
		t.Fatalf("NumTokens = %d, want %d", noTok.NumTokens, fresh.NumTokens)
	}
}

// TestResultsOutliveSession: results from consecutive parses on one session
// must not alias pooled buffers — A's result stays intact after B is parsed.
func TestResultsOutliveSession(t *testing.T) {
	s := parser.NewSession()
	resA, err := s.Parse(poisonA)
	if err != nil {
		t.Fatalf("parse A: %v", err)
	}
	printedA := printer.Compact(resA.Program)
	tokensA := append([]string(nil), tokenLexemes(resA)...)
	if _, err := s.Parse(poisonB); err != nil {
		t.Fatalf("parse B: %v", err)
	}
	if got := printer.Compact(resA.Program); got != printedA {
		t.Fatalf("A's tree changed after parsing B:\nbefore: %s\nafter:  %s", printedA, got)
	}
	if got := tokenLexemes(resA); !reflect.DeepEqual(got, tokensA) {
		t.Fatal("A's token slice was clobbered by parsing B")
	}
}

func tokenLexemes(res *parser.Result) []string {
	out := make([]string, len(res.Tokens))
	for i, tok := range res.Tokens {
		out[i] = tok.Lexeme
	}
	return out
}

// TestParseMetricsRecordedOnFailure pins the fix for the dropped
// lex.tokens_rescanned counter: arrow-head backtracking happens on failed
// parses too, and the re-scan count must land in the registry even when the
// parse errors out.
func TestParseMetricsRecordedOnFailure(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.Swap(reg)
	defer obs.Swap(prev)
	// "(a, b)" is re-scanned after the arrow-head attempt fails; the "@"
	// then kills the parse.
	if _, err := parser.Parse("(a, b)\n@"); err == nil {
		t.Fatal("malformed input must fail to parse")
	}
	if got := reg.Counter("parse.errors").Value(); got != 1 {
		t.Fatalf("parse.errors = %d, want 1", got)
	}
	if got := reg.Counter("lex.tokens_rescanned").Value(); got == 0 {
		t.Fatal("failed parse with backtracking recorded no lex.tokens_rescanned")
	}
	if got := reg.Counter("parse.files").Value(); got != 1 {
		t.Fatalf("parse.files = %d, want 1", got)
	}
}

// TestParseMetricNamesInManifest keeps the parser's obs recordings in
// lockstep with the metrics manifest: every name parse() can record must be
// a known metric, so a rename in either place fails here (the full-tree
// sync lives in internal/obs's manifest test).
func TestParseMetricNamesInManifest(t *testing.T) {
	for _, name := range []string{
		"parse.duration",
		"parse.files",
		"parse.bytes",
		"parse.file_bytes",
		"parse.tokens",
		"parse.errors",
		"lex.tokens",
		"lex.comments",
		"lex.tokens_rescanned",
	} {
		if !obs.KnownMetric(name) {
			t.Errorf("parser records %q but the manifest does not know it", name)
		}
	}
}
