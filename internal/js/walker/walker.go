// Package walker provides AST traversal and rewriting utilities shared by
// the flow analyses, the feature extractor, and the code transformers.
package walker

import (
	"repro/internal/js/ast"
)

// Visitor is called for each node during Walk. Returning false skips the
// node's children.
type Visitor func(n ast.Node, depth int) bool

// Walk traverses the AST rooted at n in pre-order, calling v for every node.
func Walk(n ast.Node, v Visitor) {
	walk(n, 0, v)
}

func walk(n ast.Node, depth int, v Visitor) {
	if n == nil {
		return
	}
	if !v(n, depth) {
		return
	}
	ast.EachChild(n, func(c ast.Node) { walk(c, depth+1, v) })
}

// Count returns the number of nodes in the subtree rooted at n.
func Count(n ast.Node) int {
	total := 0
	Walk(n, func(ast.Node, int) bool {
		total++
		return true
	})
	return total
}

// MaxDepth returns the depth of the deepest node under n (the root has
// depth 0).
func MaxDepth(n ast.Node) int {
	maxDepth := 0
	Walk(n, func(_ ast.Node, d int) bool {
		if d > maxDepth {
			maxDepth = d
		}
		return true
	})
	return maxDepth
}

// Collect returns all nodes under n for which pred is true, in pre-order.
func Collect(n ast.Node, pred func(ast.Node) bool) []ast.Node {
	var out []ast.Node
	Walk(n, func(c ast.Node, _ int) bool {
		if pred(c) {
			out = append(out, c)
		}
		return true
	})
	return out
}

// RewriteFunc maps a node to its replacement. Returning the node unchanged
// keeps it; returning nil is not allowed (use an EmptyStatement to delete a
// statement).
type RewriteFunc func(n ast.Node) ast.Node

// Rewrite rebuilds the tree bottom-up: children are rewritten first, then f
// is applied to the node itself. The input tree is mutated in place (child
// fields are reassigned) and the possibly-replaced root is returned.
func Rewrite(n ast.Node, f RewriteFunc) ast.Node {
	if n == nil {
		return nil
	}
	rewriteChildren(n, f)
	return f(n)
}

func rw(n ast.Node, f RewriteFunc) ast.Node {
	if n == nil {
		return nil
	}
	return Rewrite(n, f)
}

func rwSlice(nodes []ast.Node, f RewriteFunc) []ast.Node {
	for i, n := range nodes {
		if n != nil {
			nodes[i] = Rewrite(n, f)
		}
	}
	return nodes
}

func rwBlock(b *ast.BlockStatement, f RewriteFunc) *ast.BlockStatement {
	if b == nil {
		return nil
	}
	out := Rewrite(b, f)
	if blk, ok := out.(*ast.BlockStatement); ok {
		return blk
	}
	// A rewriter replaced a block with a non-block statement; wrap it to keep
	// the field type.
	return &ast.BlockStatement{Body: []ast.Node{out}}
}

func rewriteChildren(n ast.Node, f RewriteFunc) {
	switch v := n.(type) {
	case *ast.Program:
		v.Body = rwSlice(v.Body, f)
	case *ast.ExpressionStatement:
		v.Expression = rw(v.Expression, f)
	case *ast.BlockStatement:
		v.Body = rwSlice(v.Body, f)
	case *ast.WithStatement:
		v.Object = rw(v.Object, f)
		v.Body = rw(v.Body, f)
	case *ast.ReturnStatement:
		v.Argument = rw(v.Argument, f)
	case *ast.LabeledStatement:
		v.Body = rw(v.Body, f)
	case *ast.IfStatement:
		v.Test = rw(v.Test, f)
		v.Consequent = rw(v.Consequent, f)
		v.Alternate = rw(v.Alternate, f)
	case *ast.SwitchStatement:
		v.Discriminant = rw(v.Discriminant, f)
		for _, c := range v.Cases {
			c.Test = rw(c.Test, f)
			c.Consequent = rwSlice(c.Consequent, f)
		}
	case *ast.ThrowStatement:
		v.Argument = rw(v.Argument, f)
	case *ast.TryStatement:
		v.Block = rwBlock(v.Block, f)
		if v.Handler != nil {
			v.Handler.Param = rw(v.Handler.Param, f)
			v.Handler.Body = rwBlock(v.Handler.Body, f)
		}
		v.Finalizer = rwBlock(v.Finalizer, f)
	case *ast.WhileStatement:
		v.Test = rw(v.Test, f)
		v.Body = rw(v.Body, f)
	case *ast.DoWhileStatement:
		v.Body = rw(v.Body, f)
		v.Test = rw(v.Test, f)
	case *ast.ForStatement:
		v.Init = rw(v.Init, f)
		v.Test = rw(v.Test, f)
		v.Update = rw(v.Update, f)
		v.Body = rw(v.Body, f)
	case *ast.ForInStatement:
		v.Left = rw(v.Left, f)
		v.Right = rw(v.Right, f)
		v.Body = rw(v.Body, f)
	case *ast.ForOfStatement:
		v.Left = rw(v.Left, f)
		v.Right = rw(v.Right, f)
		v.Body = rw(v.Body, f)
	case *ast.FunctionDeclaration:
		v.Params = rwSlice(v.Params, f)
		v.Body = rwBlock(v.Body, f)
	case *ast.VariableDeclaration:
		for _, d := range v.Declarations {
			d.ID = rw(d.ID, f)
			d.Init = rw(d.Init, f)
		}
	case *ast.ClassDeclaration:
		v.SuperClass = rw(v.SuperClass, f)
		rewriteClassBody(v.Body, f)
	case *ast.ClassExpression:
		v.SuperClass = rw(v.SuperClass, f)
		rewriteClassBody(v.Body, f)
	case *ast.ExportNamedDeclaration:
		v.Declaration = rw(v.Declaration, f)
	case *ast.ExportDefaultDeclaration:
		v.Declaration = rw(v.Declaration, f)
	case *ast.ArrayExpression:
		v.Elements = rwNullable(v.Elements, f)
	case *ast.ObjectExpression:
		v.Properties = rwSlice(v.Properties, f)
	case *ast.Property:
		v.Key = rw(v.Key, f)
		v.Value = rw(v.Value, f)
	case *ast.FunctionExpression:
		v.Params = rwSlice(v.Params, f)
		v.Body = rwBlock(v.Body, f)
	case *ast.ArrowFunctionExpression:
		v.Params = rwSlice(v.Params, f)
		v.Body = rw(v.Body, f)
	case *ast.TemplateLiteral:
		v.Expressions = rwSlice(v.Expressions, f)
	case *ast.TaggedTemplateExpression:
		v.Tag = rw(v.Tag, f)
		if q := rw(v.Quasi, f); q != nil {
			if tq, ok := q.(*ast.TemplateLiteral); ok {
				v.Quasi = tq
			}
		}
	case *ast.MemberExpression:
		v.Object = rw(v.Object, f)
		v.Property = rw(v.Property, f)
	case *ast.CallExpression:
		v.Callee = rw(v.Callee, f)
		v.Arguments = rwSlice(v.Arguments, f)
	case *ast.NewExpression:
		v.Callee = rw(v.Callee, f)
		v.Arguments = rwSlice(v.Arguments, f)
	case *ast.SpreadElement:
		v.Argument = rw(v.Argument, f)
	case *ast.UnaryExpression:
		v.Argument = rw(v.Argument, f)
	case *ast.UpdateExpression:
		v.Argument = rw(v.Argument, f)
	case *ast.BinaryExpression:
		v.Left = rw(v.Left, f)
		v.Right = rw(v.Right, f)
	case *ast.LogicalExpression:
		v.Left = rw(v.Left, f)
		v.Right = rw(v.Right, f)
	case *ast.AssignmentExpression:
		v.Left = rw(v.Left, f)
		v.Right = rw(v.Right, f)
	case *ast.ConditionalExpression:
		v.Test = rw(v.Test, f)
		v.Consequent = rw(v.Consequent, f)
		v.Alternate = rw(v.Alternate, f)
	case *ast.SequenceExpression:
		v.Expressions = rwSlice(v.Expressions, f)
	case *ast.RestElement:
		v.Argument = rw(v.Argument, f)
	case *ast.AssignmentPattern:
		v.Left = rw(v.Left, f)
		v.Right = rw(v.Right, f)
	case *ast.ArrayPattern:
		v.Elements = rwNullable(v.Elements, f)
	case *ast.ObjectPattern:
		v.Properties = rwSlice(v.Properties, f)
	case *ast.AwaitExpression:
		v.Argument = rw(v.Argument, f)
	case *ast.YieldExpression:
		v.Argument = rw(v.Argument, f)
	}
}

func rewriteClassBody(b *ast.ClassBody, f RewriteFunc) {
	if b == nil {
		return
	}
	for _, member := range b.Body {
		switch m := member.(type) {
		case *ast.MethodDefinition:
			m.Key = rw(m.Key, f)
			if m.Value != nil {
				m.Value.Params = rwSlice(m.Value.Params, f)
				m.Value.Body = rwBlock(m.Value.Body, f)
			}
		case *ast.PropertyDefinition:
			m.Key = rw(m.Key, f)
			m.Value = rw(m.Value, f)
		}
	}
}

// rwNullable rewrites a slice that may contain nil holes (array elisions).
func rwNullable(nodes []ast.Node, f RewriteFunc) []ast.Node {
	for i, n := range nodes {
		if n != nil {
			nodes[i] = Rewrite(n, f)
		}
	}
	return nodes
}
