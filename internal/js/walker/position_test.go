package walker

import (
	"fmt"
	"testing"

	"repro/internal/js/ast"
)

// positionPrograms exercise every parser construct that historically
// produced zero-span nodes: labels, break/continue labels, shorthand
// properties and patterns, arrow single params, member property names,
// meta properties, template elements, class names, and import/export
// specifiers.
var positionPrograms = map[string]string{
	"labels": `outer: for (var i = 0; i < 3; i++) {
  inner: while (true) {
    if (i > 1) { break outer; }
    continue inner;
  }
}`,
	"members_and_arrows": `var obj = { a: 1, b() { return this.a; } };
var f = x => x * 2;
var g = async y => y + 1;
var v = obj.a + obj["b"]();
var opt = obj?.a ?? obj?.["a"];`,
	"shorthand_patterns": `var a = 1, b = 2;
var o = { a, b };
var { a: c = 3, b: d } = o;
function h({ a, b = 5 }) { return a + b; }`,
	"meta_and_templates": "function F() { if (new.target) { return 1; } }\n" +
		"var t = `head ${1 + 2} middle ${F()} tail`;\n" +
		"var plain = `no substitution`;\n" +
		"var tagged = String.raw`a${1}b`;",
	"classes_and_functions": `class Base { constructor() { this.x = 1; } get v() { return this.x; } }
class Derived extends Base { static make() { return new Derived(); } }
function named() {}
var expr = function alsoNamed() {};`,
	"modules": `import def from "mod";
import * as ns from "mod";
import { one, two as three } from "mod";
export { one, three as four };
export default def;
export * from "other";`,
	"obfuscated_shape": `var _0x12ab = ["a", "b", "c", "d", "e", "f", "g", "h"];
function _0x34cd(i) { return _0x12ab[i - 2]; }
while (true) { switch ("1|0".split("|")[k++]) { case "0": _0x34cd(2); continue; } break; }`,
}

// TestParsedNodesHavePositions asserts position fidelity end-to-end: every
// node the parser produces carries a non-zero source span (Line is 1-based,
// so a zero Line marks an unstamped node).
func TestParsedNodesHavePositions(t *testing.T) {
	for name, src := range positionPrograms {
		t.Run(name, func(t *testing.T) {
			prog := mustParse(t, src)
			Walk(prog, func(n ast.Node, _ int) bool {
				sp := n.Span()
				if sp.Start.Line < 1 || sp.End.Line < 1 {
					t.Errorf("%s node has zero position: %+v (%s)",
						n.Type(), sp, describe(src, sp))
				}
				if sp.End.Offset < sp.Start.Offset {
					t.Errorf("%s node has inverted span: %+v", n.Type(), sp)
				}
				return true
			})
		})
	}
}

func describe(src string, sp ast.Span) string {
	lo, hi := sp.Start.Offset, sp.End.Offset
	if lo < 0 || hi > len(src) || lo >= hi {
		return "<empty>"
	}
	if hi-lo > 40 {
		hi = lo + 40
	}
	return fmt.Sprintf("%q", src[lo:hi])
}
