package walker

import (
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestWalkVisitsEveryNode(t *testing.T) {
	prog := mustParse(t, `function f(a) { return a + 1; } f(2);`)
	var types []string
	Walk(prog, func(n ast.Node, _ int) bool {
		types = append(types, n.Type())
		return true
	})
	want := map[string]bool{
		"Program": true, "FunctionDeclaration": true, "Identifier": true,
		"BlockStatement": true, "ReturnStatement": true, "BinaryExpression": true,
		"Literal": true, "ExpressionStatement": true, "CallExpression": true,
	}
	seen := make(map[string]bool)
	for _, ty := range types {
		seen[ty] = true
	}
	for ty := range want {
		if !seen[ty] {
			t.Fatalf("node type %s not visited; saw %v", ty, types)
		}
	}
}

func TestWalkSkipsChildren(t *testing.T) {
	prog := mustParse(t, `function f() { inner(); } outer();`)
	var calls int
	Walk(prog, func(n ast.Node, _ int) bool {
		if _, ok := n.(*ast.FunctionDeclaration); ok {
			return false // skip the function subtree
		}
		if _, ok := n.(*ast.CallExpression); ok {
			calls++
		}
		return true
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want only the outer one", calls)
	}
}

func TestCountAndMaxDepth(t *testing.T) {
	prog := mustParse(t, `var x = 1;`)
	if c := Count(prog); c != 5 {
		// Program, VariableDeclaration, VariableDeclarator, Identifier, Literal.
		t.Fatalf("Count = %d, want 5", c)
	}
	if d := MaxDepth(prog); d != 3 {
		t.Fatalf("MaxDepth = %d, want 3", d)
	}
}

func TestCollect(t *testing.T) {
	prog := mustParse(t, `a(); b(); var x = c();`)
	calls := Collect(prog, func(n ast.Node) bool {
		_, ok := n.(*ast.CallExpression)
		return ok
	})
	if len(calls) != 3 {
		t.Fatalf("collected %d calls", len(calls))
	}
}

func TestRewriteReplacesLiterals(t *testing.T) {
	prog := mustParse(t, `var x = 1 + 2;`)
	Rewrite(prog, func(n ast.Node) ast.Node {
		if lit, ok := n.(*ast.Literal); ok && lit.Kind == ast.LiteralNumber {
			return ast.NewNumber(lit.Number * 10)
		}
		return n
	})
	decl := prog.Body[0].(*ast.VariableDeclaration)
	bin := decl.Declarations[0].Init.(*ast.BinaryExpression)
	if bin.Left.(*ast.Literal).Number != 10 || bin.Right.(*ast.Literal).Number != 20 {
		t.Fatal("literals not rewritten")
	}
}

func TestRewriteBottomUp(t *testing.T) {
	// Children are rewritten before parents: a parent rewriter must see the
	// already-rewritten children.
	prog := mustParse(t, `var x = 1 + 2;`)
	Rewrite(prog, func(n ast.Node) ast.Node {
		switch v := n.(type) {
		case *ast.Literal:
			return ast.NewNumber(5)
		case *ast.BinaryExpression:
			l := v.Left.(*ast.Literal)
			r := v.Right.(*ast.Literal)
			if l.Number != 5 || r.Number != 5 {
				t.Fatal("parent rewriter saw stale children")
			}
			return ast.NewNumber(l.Number + r.Number)
		}
		return n
	})
	decl := prog.Body[0].(*ast.VariableDeclaration)
	if decl.Declarations[0].Init.(*ast.Literal).Number != 10 {
		t.Fatal("rewrite result not propagated")
	}
}

func TestRewriteStatementReplacement(t *testing.T) {
	prog := mustParse(t, `if (a) { b(); }`)
	Rewrite(prog, func(n ast.Node) ast.Node {
		if _, ok := n.(*ast.IfStatement); ok {
			return &ast.EmptyStatement{}
		}
		return n
	})
	if _, ok := prog.Body[0].(*ast.EmptyStatement); !ok {
		t.Fatalf("statement not replaced: %s", prog.Body[0].Type())
	}
}

func TestRewritePreservesHoles(t *testing.T) {
	prog := mustParse(t, `var a = [1, , 3];`)
	Rewrite(prog, func(n ast.Node) ast.Node { return n })
	arr := prog.Body[0].(*ast.VariableDeclaration).Declarations[0].Init.(*ast.ArrayExpression)
	if len(arr.Elements) != 3 || arr.Elements[1] != nil {
		t.Fatal("array hole lost")
	}
}
