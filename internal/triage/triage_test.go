package triage

import (
	"math"
	"strings"
	"testing"
)

func TestDecisionString(t *testing.T) {
	cases := map[Decision]string{
		Escalate:       "escalate",
		BypassRegular:  "bypass-regular",
		BypassMinified: "bypass-minified",
		Decision(99):   "escalate",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("Decision(%d).String() = %q, want %q", d, got, want)
		}
	}
	if Escalate.Bypassed() {
		t.Error("Escalate.Bypassed() = true")
	}
	if !BypassRegular.Bypassed() || !BypassMinified.Bypassed() {
		t.Error("bypass decisions must report Bypassed")
	}
}

// TestComputeCounters drives each token matcher with a minimal positive and
// negative case.
func TestComputeCounters(t *testing.T) {
	get := func(f Features) map[string]int {
		return map[string]int{
			"HexEscapes":     f.HexEscapes,
			"UnicodeEscapes": f.UnicodeEscapes,
			"HexIdents":      f.HexIdents,
			"EvalCount":      f.EvalCount,
			"FunctionCount":  f.FunctionCount,
			"AtobCount":      f.AtobCount,
			"CaseCount":      f.CaseCount,
			"Base64Runs":     f.Base64Runs,
			"DataURIHits":    f.DataURIHits,
			"ConstCmps":      f.ConstCmps,
			"StrConcats":     f.StrConcats,
			"CharCodeHits":   f.CharCodeHits,
			"QuoteCalls":     f.QuoteCalls,
			"PercentEscapes": f.PercentEscapes,
		}
	}
	cases := []struct {
		name    string
		src     string
		counter string
		want    int
	}{
		{"hex escape", `var s = "\x41\x42";`, "HexEscapes", 2},
		{"unicode escape", `var s = "\u0041";`, "UnicodeEscapes", 1},
		{"unicode brace escape", `var s = "\u{1F600}";`, "UnicodeEscapes", 1},
		{"double backslash not escape", `var s = "a\\nb";`, "HexEscapes", 0},
		{"hex ident short", `var _0x1 = 1;`, "HexIdents", 1},
		{"hex ident long", `_0x1a2b3c4d['push'](_0xabc123);`, "HexIdents", 2},
		{"underscore alone", `var _x0 = 1;`, "HexIdents", 0},
		{"eval word", `eval(code);`, "EvalCount", 1},
		{"eval substring", `medieval(code); evaluate();`, "EvalCount", 0},
		{"Function", `new Function("return 1")();`, "FunctionCount", 1},
		{"function keyword is not Function", `function f() {}`, "FunctionCount", 0},
		{"atob", `atob(payload);`, "AtobCount", 1},
		{"case labels", "switch (x) { case 1: case 2: break; }", "CaseCount", 2},
		{"base64 run", `var p = "` + strings.Repeat("Ab0+", 6) + `";`, "Base64Runs", 1},
		{"short run no hit", `var p = "` + strings.Repeat("Ab0+", 5) + `";`, "Base64Runs", 0},
		{"data uri", `u = "data:text/javascript;base64,QUJD";`, "DataURIHits", 1},
		{"const cmp strict eq", `if (500 === 501) { x(); }`, "ConstCmps", 1},
		{"const cmp loose eq nospace", `if (500==501) { x(); }`, "ConstCmps", 1},
		{"const cmp noteq", `if (500 !== 501) { x(); }`, "ConstCmps", 1},
		{"const cmp strings", `while ("xk" == "xq") { x(); }`, "ConstCmps", 1},
		{"const cmp string vs num", `if ("a" === 5) { x(); }`, "ConstCmps", 1},
		{"const chain multiply", `if (4 * 4 < 4) { x(); }`, "ConstCmps", 1},
		{"const chain add", `if (1 + 2 === 4) { x(); }`, "ConstCmps", 1},
		{"const relational le", `if (9 <= 2) { x(); }`, "ConstCmps", 1},
		{"ident left no cmp", `if (x === 501) { y(); }`, "ConstCmps", 0},
		{"ident right no cmp", `if (501 === x) { y(); }`, "ConstCmps", 0},
		{"typeof cmp no hit", `if (typeof v === "number") { y(); }`, "ConstCmps", 0},
		{"modulo operand no cmp", `ok = row.id % 3 !== 0;`, "ConstCmps", 0},
		{"shift is not cmp", `mask = 1 << 2;`, "ConstCmps", 0},
		{"assignment is not cmp", `a[0] = 1;`, "ConstCmps", 0},
		{"cmp inside string ignored", `s = "500 === 501";`, "ConstCmps", 0},
		{"str concat", `s = "hel" + "lo w" + "orld";`, "StrConcats", 2},
		{"concat with ident no hit", `s = "hello " + name;`, "StrConcats", 0},
		{"num add no concat", `n = 1 + 2;`, "StrConcats", 0},
		{"fromCharCode", `String.fromCharCode(104, 105);`, "CharCodeHits", 1},
		{"quote call", `"tcejbo".split("").reverse().join("");`, "QuoteCalls", 1},
		{"decimal literal no quote call", `x = 3.14;`, "QuoteCalls", 0},
		{"percent escapes", `decodeURIComponent("%68%69%21");`, "PercentEscapes", 3},
		{"percent outside string", `x = a % 68;`, "PercentEscapes", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := Compute(tc.src)
			if got := get(f)[tc.counter]; got != tc.want {
				t.Errorf("Compute(%q).%s = %d, want %d", tc.src, tc.counter, got, tc.want)
			}
		})
	}
}

func TestComputeShapeStats(t *testing.T) {
	src := "var a = 1;\nvar bb = 22;\n"
	f := Compute(src)
	if f.Lines != 2 {
		t.Errorf("Lines = %d, want 2", f.Lines)
	}
	if f.MaxLineLen != len("var bb = 22;") {
		t.Errorf("MaxLineLen = %d, want %d", f.MaxLineLen, len("var bb = 22;"))
	}
	if f.Bytes != len(src) {
		t.Errorf("Bytes = %d, want %d (input is already canonical)", f.Bytes, len(src))
	}
	if f.WhitespaceRatio <= 0 || f.WhitespaceRatio >= 1 {
		t.Errorf("WhitespaceRatio = %f out of range", f.WhitespaceRatio)
	}
	if f.AlnumRatio <= 0 || f.AlnumRatio >= 1 {
		t.Errorf("AlnumRatio = %f out of range", f.AlnumRatio)
	}
	if f.MeanLineLen <= 0 {
		t.Errorf("MeanLineLen = %f, want > 0", f.MeanLineLen)
	}

	// Final line without trailing newline still counts.
	if g := Compute("a = 1;"); g.Lines != 1 {
		t.Errorf("no-newline file: Lines = %d, want 1", g.Lines)
	}

	// Uniform byte text has zero entropy; richer text has more.
	if g := Compute(strings.Repeat("a", 256)); g.Entropy != 0 {
		t.Errorf("uniform text entropy = %f, want 0", g.Entropy)
	}
	if f.Entropy <= 1 || f.Entropy > 8 {
		t.Errorf("source entropy = %f, want in (1, 8]", f.Entropy)
	}
	if g := Compute(""); g.Bytes != 0 || g.Lines != 0 {
		t.Errorf("empty input: Bytes=%d Lines=%d, want 0,0", g.Bytes, g.Lines)
	}

	// Non-ASCII bytes are tracked.
	if g := Compute("var x = \"ééé\";\n"); g.NonASCIIRatio == 0 {
		t.Error("NonASCIIRatio = 0 for non-ASCII content")
	}
}

func TestScoreMonotoneAndBounded(t *testing.T) {
	f := Features{Bytes: 4096, AlnumRatio: 0.6}
	if s := f.Score(); s != 0 {
		t.Errorf("zero features score = %f, want 0", s)
	}
	f.HexEscapes = 1000
	f.HexIdents = 1000
	f.EvalCount = 1000
	f.CaseCount = 1000
	f.Base64Runs = 1000
	f.DataURIHits = 10
	f.ConstCmps = 100
	f.Entropy = 8
	if s := f.Score(); s != 1 {
		t.Errorf("saturated score = %f, want 1", s)
	}
	// Each counter alone moves the score.
	for name, set := range map[string]func(*Features){
		"HexEscapes":     func(f *Features) { f.HexEscapes = 50 },
		"UnicodeEscapes": func(f *Features) { f.UnicodeEscapes = 50 },
		"HexIdents":      func(f *Features) { f.HexIdents = 50 },
		"EvalCount":      func(f *Features) { f.EvalCount = 50 },
		"CaseCount":      func(f *Features) { f.CaseCount = 50 },
		"Base64Runs":     func(f *Features) { f.Base64Runs = 50 },
		"DataURIHits":    func(f *Features) { f.DataURIHits = 5 },
		"ConstCmps":      func(f *Features) { f.ConstCmps = 5 },
		"StrConcats":     func(f *Features) { f.StrConcats = 50 },
		"CharCodeHits":   func(f *Features) { f.CharCodeHits = 50 },
		"QuoteCalls":     func(f *Features) { f.QuoteCalls = 50 },
		"PercentEscapes": func(f *Features) { f.PercentEscapes = 50 },
	} {
		g := Features{Bytes: 4096, AlnumRatio: 0.6}
		base := g.Score()
		set(&g)
		if g.Score() <= base {
			t.Errorf("%s: score did not increase (%f -> %f)", name, base, g.Score())
		}
	}
}

func TestRouteDecisions(t *testing.T) {
	cfg := Config{}

	// Tiny files always escalate: their statistics are noise.
	if d, _ := Route("x=1", cfg); d != Escalate {
		t.Errorf("tiny file routed %v, want escalate", d)
	}

	// A plain, hand-formatted file bypasses as regular.
	regular := strings.Repeat("function add(a, b) {\n  return a + b;\n}\n", 10)
	if d, _ := Route(regular, cfg); d != BypassRegular {
		t.Errorf("plain source routed %v, want bypass-regular", d)
	}

	// One long line with almost no whitespace bypasses as minified.
	var b strings.Builder
	for i := 0; i < 120; i++ {
		b.WriteString("x")
		b.WriteByte(byte('0' + i%10))
		b.WriteString("=function(a,b){return a+b};")
	}
	if d, f := Route(b.String(), cfg); d != BypassMinified {
		t.Errorf("minified source routed %v (score %.3f, maxline %d, ws %.3f), want bypass-minified",
			d, f.Score(), f.MaxLineLen, f.WhitespaceRatio)
	}

	// The same minified line laced with obfuscation signal escalates.
	laced := b.String() + `;eval(atob("` + strings.Repeat("QUJD", 10) + `"));eval(x);eval(y);`
	if d, _ := Route(laced, cfg); d != Escalate {
		t.Errorf("obfuscation-laced minified source routed %v, want escalate", d)
	}

	// A regular-shaped file with opaque predicates escalates.
	dead := regular + "if (500 === 501) { x = 1; }\nif (\"xk\" == \"xq\") { y = 2; }\n"
	if d, _ := Route(dead, cfg); d != Escalate {
		t.Errorf("opaque-predicate source routed %v, want escalate", d)
	}

	// In-between shapes (neither clearly regular nor minified) escalate.
	mid := strings.Repeat("var abc = 1; var def = 2; var ghi = 3;\n", 4) +
		strings.Repeat("x", 400) + "\n"
	if d, _ := Route(mid, cfg); d != Escalate {
		t.Errorf("ambiguous-shape source routed %v, want escalate", d)
	}
}

func TestConfigOverrides(t *testing.T) {
	cfg := Config{
		MaxSuspicion:          0.5,
		MinBytes:              1,
		MaxRegularLineLen:     1000,
		MinRegularWhitespace:  0.01,
		MaxRegularEntropy:     7.9,
		MinMinifiedLineLen:    10,
		MaxMinifiedWhitespace: 0.9,
	}
	if got := cfg.maxSuspicion(); got != 0.5 {
		t.Errorf("maxSuspicion() = %f", got)
	}
	if got := cfg.minBytes(); got != 1 {
		t.Errorf("minBytes() = %d", got)
	}
	if got := cfg.maxRegularLineLen(); got != 1000 {
		t.Errorf("maxRegularLineLen() = %d", got)
	}
	if got := cfg.minRegularWhitespace(); got != 0.01 {
		t.Errorf("minRegularWhitespace() = %f", got)
	}
	if got := cfg.maxRegularEntropy(); got != 7.9 {
		t.Errorf("maxRegularEntropy() = %f", got)
	}
	if got := cfg.minMinifiedLineLen(); got != 10 {
		t.Errorf("minMinifiedLineLen() = %d", got)
	}
	if got := cfg.maxMinifiedWhitespace(); got != 0.9 {
		t.Errorf("maxMinifiedWhitespace() = %f", got)
	}

	var zero Config
	if zero.maxSuspicion() != DefaultMaxSuspicion ||
		zero.minBytes() != DefaultMinBytes ||
		zero.maxRegularLineLen() != DefaultMaxRegularLineLen ||
		zero.minRegularWhitespace() != DefaultMinRegularWhitespace ||
		zero.maxRegularEntropy() != DefaultMaxRegularEntropy ||
		zero.minMinifiedLineLen() != DefaultMinMinifiedLineLen ||
		zero.maxMinifiedWhitespace() != DefaultMaxMinifiedWhitespace {
		t.Error("zero Config does not resolve to the documented defaults")
	}

	// With a permissive config a short snippet can bypass; the minified
	// shape is checked before the regular one, so the 10-byte line floor
	// claims it.
	if d, _ := Route("var aaa = 1; var bbb = 2; var ccc = 3;\n", cfg); d != BypassMinified {
		t.Errorf("permissive config routed %v, want bypass-minified", d)
	}
}

// TestTriageWhitespaceInvariance pins the canonicalization contract: routing
// decisions and every feature except raw line statistics are invariant under
// whitespace-only re-renderings (tabs for spaces, CRLF for LF, trailing
// whitespace, run-length changes of horizontal whitespace).
func TestTriageWhitespaceInvariance(t *testing.T) {
	src := "function greet(name) {\n" +
		"  if (name === undefined) { name = \"world\"; }\n" +
		"  var msg = \"hello \" + name;\n" +
		"  return msg;\n" +
		"}\n" +
		"var out = [1, 2, 3].map(function (n) { return n * 2; });\n" +
		"if (500 === 501) { broken(); }\n"

	renders := map[string]func(string) string{
		"tabs for double spaces": func(s string) string {
			return strings.ReplaceAll(s, "  ", "\t")
		},
		"crlf": func(s string) string {
			return strings.ReplaceAll(s, "\n", "\r\n")
		},
		"trailing spaces": func(s string) string {
			return strings.ReplaceAll(s, "\n", "   \n")
		},
		"wide indents": func(s string) string {
			return strings.ReplaceAll(s, "  ", "        ")
		},
		"space runs inside lines": func(s string) string {
			return strings.ReplaceAll(s, " = ", "   =   ")
		},
	}

	base := Compute(src)
	baseDecision, _ := Route(src, Config{})
	for name, render := range renders {
		t.Run(name, func(t *testing.T) {
			got := Compute(render(src))
			if got != base {
				t.Errorf("features differ from base:\n base %+v\n  got %+v", base, got)
			}
			if d, _ := Route(render(src), Config{}); d != baseDecision {
				t.Errorf("decision %v differs from base %v", d, baseDecision)
			}
		})
	}
}

func TestDensityZeroBytes(t *testing.T) {
	var f Features
	if got := f.density(10); got != 0 {
		t.Errorf("density on empty file = %f, want 0", got)
	}
	if s := f.Score(); math.IsNaN(s) || s < 0 || s > 1 {
		t.Errorf("empty-file score = %f, want finite in [0,1]", s)
	}
}
