package triage

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/transform"
)

// metamorphicScoreTolerance bounds how much a transformation may lower the
// escalation propensity of a file. Transforms re-print the whole program, so
// densities computed per canonical byte wobble slightly; they must never
// wobble enough to walk a file away from escalation.
const metamorphicScoreTolerance = 0.05

// TestTriageMetamorphicEscalation pins the router's one-way property: applying
// an obfuscating or minifying transformation never lowers a file's escalation
// propensity (Features.Score). Together with the conservative bypass rule —
// bypasses are only granted at near-zero scores — this means a transformation
// can cost a file its bypass but never earn one. Seeds follow the
// core.MetamorphicSweep policy: one deterministic source per technique at
// 1000+ti, so failures reproduce exactly.
func TestTriageMetamorphicEscalation(t *testing.T) {
	bases := corpus.RegularSet(25, rand.New(rand.NewSource(4242)))
	for ti, tech := range transform.Techniques {
		tech := tech
		rng := rand.New(rand.NewSource(1000 + int64(ti)))
		t.Run(tech.String(), func(t *testing.T) {
			for _, base := range bases {
				tf, err := corpus.Apply(base, rng, tech)
				if err != nil {
					t.Fatalf("%s: apply: %v", base.Name, err)
				}
				sBase := Compute(base.Source)
				sTf := Compute(tf.Source)
				if sTf.Score() < sBase.Score()-metamorphicScoreTolerance {
					t.Errorf("%s: score dropped %.3f -> %.3f under %s",
						base.Name, sBase.Score(), sTf.Score(), tech)
				}
			}
		})
	}
}
