// Package triage is the stage-0 pre-classifier of the scan cascade: a single
// pass over the raw source text computes cheap features (Shannon entropy,
// escape densities, dynamic-code token counts, line-shape statistics,
// base64/data-URI hits) and routes high-confidence regular or plainly
// minified files around the full parse→flow→features→infer pipeline. The
// premise is the paper's own: most in-the-wild JavaScript is easy, and the
// expensive detectors only earn their cost on the hard tail.
//
// The router is deliberately conservative — any suspicion signal escalates —
// and its honesty is measured, not assumed: TestTriageFalseBypassGate in
// internal/core compares cascade verdicts against full-pipeline verdicts over
// the training corpus plus all ten transform outputs and fails the build when
// the disagreement rate on bypassed files reaches 1%.
//
// Features are computed over a canonicalized view of the text (CR dropped,
// horizontal whitespace runs collapsed to one space, trailing spaces
// stripped), so routing decisions are invariant under whitespace-only
// re-renderings of the same file: retabbing, re-indenting, or converting line
// endings never flips a decision. TestTriageWhitespaceInvariance pins that
// property.
package triage

import "math"

// Decision is a stage-0 routing verdict.
type Decision int

const (
	// Escalate sends the file through the full pipeline: it is either
	// suspicious or not confidently classifiable from text shape alone.
	Escalate Decision = iota
	// BypassRegular skips the pipeline: the file is high-confidence regular.
	BypassRegular
	// BypassMinified skips the pipeline: the file is high-confidence
	// minified (and nothing suggests obfuscation on top).
	BypassMinified
)

// String names the decision for stats and logs.
func (d Decision) String() string {
	switch d {
	case BypassRegular:
		return "bypass-regular"
	case BypassMinified:
		return "bypass-minified"
	default:
		return "escalate"
	}
}

// Bypassed reports whether the decision routes around the full pipeline.
func (d Decision) Bypassed() bool { return d != Escalate }

// Features are the cheap single-pass text statistics the router decides on.
// All densities are per canonical byte; see the package comment for the
// canonical view.
type Features struct {
	// Bytes is the canonical text size; Lines the number of (non-empty or
	// empty) physical lines.
	Bytes int
	Lines int
	// MaxLineLen and MeanLineLen describe line shape after canonicalization:
	// minified files have one enormous line, regular files short ones.
	MaxLineLen  int
	MeanLineLen float64
	// WhitespaceRatio is the fraction of canonical bytes that are spaces or
	// newlines. Minifiers drive it toward zero.
	WhitespaceRatio float64
	// Entropy is the Shannon entropy of the canonical bytes, in bits.
	Entropy float64
	// AlnumRatio is the fraction of canonical bytes that are ASCII
	// letters or digits; symbol-soup encodings (no-alphanumeric) crater it.
	AlnumRatio float64
	// NonASCIIRatio is the fraction of canonical bytes >= 0x80.
	NonASCIIRatio float64
	// HexEscapes and UnicodeEscapes count \xNN and \uNNNN (or \u{...})
	// sequences; HexIdents counts _0x occurrences (the obfuscator-idiom
	// identifier prefix, also used by flattening dispatchers).
	HexEscapes     int
	UnicodeEscapes int
	HexIdents      int
	// EvalCount, FunctionCount, AtobCount count whole-word occurrences of
	// the dynamic-code sinks the paper's indicators key on.
	EvalCount     int
	FunctionCount int
	AtobCount     int
	// CaseCount counts whole-word `case` occurrences; flattened dispatch
	// loops inflate it far beyond hand-written switches.
	CaseCount int
	// Base64Runs counts maximal [A-Za-z0-9+/=]{24,} runs; DataURIHits
	// counts "base64," markers (data: URI payload signatures).
	Base64Runs  int
	DataURIHits int
	// ConstCmps counts equality comparisons whose both operands are
	// literals (`500 === 501`, `"xk" == "xq"`): the opaque-predicate idiom
	// dead-code injectors guard never-taken branches with. Hand-written
	// code compares variables, not constants.
	ConstCmps int
	// StrConcats counts `+` operators joining two string literals
	// (`"hel" + "lo"`): the split-and-concat idiom string obfuscators use
	// to keep literals out of plain text.
	StrConcats int
	// CharCodeHits counts `fromCharCode` occurrences: the paper's indicator
	// for character-code string encoding.
	CharCodeHits int
	// QuoteCalls counts method calls on string literals
	// (`"tcejbo".split("")...`): hand-written code rarely calls methods on
	// literals, reverse/join decoders always do.
	QuoteCalls int
	// PercentEscapes counts %XX hex pairs inside string literals: the
	// percent-encoding family of string obfuscators.
	PercentEscapes int
}

// density returns count per canonical kilobyte.
func (f *Features) density(count int) float64 {
	if f.Bytes == 0 {
		return 0
	}
	return float64(count) * 1024 / float64(f.Bytes)
}

// Score is the escalation propensity in [0, 1]: 0 means nothing about the
// text suggests obfuscation, 1 means overwhelming signal. Every component is
// a density or ratio, so transformations that add obfuscation signal can only
// raise it — the metamorphic property TestTriageMetamorphicEscalation pins.
// The router escalates at any positive score worth acting on
// (Config.MaxSuspicion), so Score doubles as the "how close to escalation"
// measurement the metamorphic test needs.
func (f *Features) Score() float64 {
	s := 0.0
	// Escape sequences: legitimate code has a handful; string-obfuscated
	// code has hundreds per KB. Saturates at ~4/KB.
	s += 0.25 * clamp01((f.density(f.HexEscapes)+f.density(f.UnicodeEscapes))/4)
	// Obfuscator-idiom identifiers (_0x...): any real density is damning.
	s += 0.25 * clamp01(f.density(f.HexIdents)/2)
	// Dynamic-code sinks per KB: eval / Function / atob.
	s += 0.2 * clamp01(f.density(f.EvalCount+f.FunctionCount+f.AtobCount)/2)
	// Dense case labels: flattening dispatchers produce switches with far
	// more arms per KB than hand-written code. Saturates at ~8/KB.
	s += 0.15 * clamp01(f.density(f.CaseCount)/8)
	// Base64 payloads and data: URIs.
	s += 0.15 * clamp01(f.density(f.Base64Runs)/1)
	s += 0.1 * clamp01(float64(f.DataURIHits))
	// Opaque predicates: even one literal-vs-literal equality in a few KB
	// is enough to escalate — nobody writes `500 === 501` by hand.
	s += 0.25 * clamp01(f.density(f.ConstCmps)/0.25)
	// Split-string concatenation chains.
	s += 0.2 * clamp01(f.density(f.StrConcats)/2)
	// Character-code decoding, method calls on string literals, and
	// percent-encoded payloads: the string-obfuscation decoder idioms.
	s += 0.2 * clamp01(f.density(f.CharCodeHits)/0.5)
	s += 0.2 * clamp01(f.density(f.QuoteCalls)/0.5)
	s += 0.2 * clamp01(f.density(f.PercentEscapes)/2)
	// Entropy outside the band of plain source text.
	s += 0.2 * clamp01((f.Entropy-5.1)/0.9)
	// Symbol soup: alphanumeric ratio collapses under no-alphanumeric
	// style encodings (JSFuck, aaencode).
	s += 0.3 * clamp01((0.38-f.AlnumRatio)/0.38)
	// Non-ASCII payloads (aaencode, packed unicode strings).
	s += 0.2 * clamp01(f.NonASCIIRatio/0.05)
	return clamp01(s)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Config tunes the router. The zero value uses the documented defaults,
// which the false-bypass gate in internal/core validates against the
// training corpus and all ten transform outputs.
type Config struct {
	// MaxSuspicion is the Score above which a file always escalates,
	// whatever its shape. <= 0 means DefaultMaxSuspicion.
	MaxSuspicion float64
	// MinBytes is the smallest file the router will bypass: tiny files are
	// cheap to scan and their text statistics are noise. <= 0 means
	// DefaultMinBytes.
	MinBytes int
	// MaxRegularLineLen is the longest canonical line a bypass-regular file
	// may have. <= 0 means DefaultMaxRegularLineLen.
	MaxRegularLineLen int
	// MinRegularWhitespace is the lowest whitespace ratio still considered
	// hand-formatted. <= 0 means DefaultMinRegularWhitespace.
	MinRegularWhitespace float64
	// MaxRegularEntropy bounds the entropy of a bypass-regular file.
	// <= 0 means DefaultMaxRegularEntropy.
	MaxRegularEntropy float64
	// MinMinifiedLineLen is the shortest max-line a bypass-minified file
	// may have. <= 0 means DefaultMinMinifiedLineLen.
	MinMinifiedLineLen int
	// MaxMinifiedWhitespace is the highest whitespace ratio a
	// bypass-minified file may have. <= 0 means DefaultMaxMinifiedWhitespace.
	MaxMinifiedWhitespace float64
}

// Router defaults; see Config.
const (
	DefaultMaxSuspicion          = 0.10
	DefaultMinBytes              = 64
	DefaultMaxRegularLineLen     = 300
	DefaultMinRegularWhitespace  = 0.10
	DefaultMaxRegularEntropy     = 5.2
	DefaultMinMinifiedLineLen    = 250
	DefaultMaxMinifiedWhitespace = 0.06
)

func (c Config) maxSuspicion() float64 {
	if c.MaxSuspicion <= 0 {
		return DefaultMaxSuspicion
	}
	return c.MaxSuspicion
}

func (c Config) minBytes() int {
	if c.MinBytes <= 0 {
		return DefaultMinBytes
	}
	return c.MinBytes
}

func (c Config) maxRegularLineLen() int {
	if c.MaxRegularLineLen <= 0 {
		return DefaultMaxRegularLineLen
	}
	return c.MaxRegularLineLen
}

func (c Config) minRegularWhitespace() float64 {
	if c.MinRegularWhitespace <= 0 {
		return DefaultMinRegularWhitespace
	}
	return c.MinRegularWhitespace
}

func (c Config) maxRegularEntropy() float64 {
	if c.MaxRegularEntropy <= 0 {
		return DefaultMaxRegularEntropy
	}
	return c.MaxRegularEntropy
}

func (c Config) minMinifiedLineLen() int {
	if c.MinMinifiedLineLen <= 0 {
		return DefaultMinMinifiedLineLen
	}
	return c.MinMinifiedLineLen
}

func (c Config) maxMinifiedWhitespace() float64 {
	if c.MaxMinifiedWhitespace <= 0 {
		return DefaultMaxMinifiedWhitespace
	}
	return c.MaxMinifiedWhitespace
}

// Route computes the features of src and decides where it goes. This is the
// whole stage-0 cost: one pass over the bytes, no allocation beyond the
// Features value.
func Route(src string, cfg Config) (Decision, Features) {
	f := Compute(src)
	return cfg.Route(&f), f
}

// Route decides from already-computed features.
func (c Config) Route(f *Features) Decision {
	if f.Bytes < c.minBytes() {
		return Escalate
	}
	// Any obfuscation signal disqualifies both bypass routes: a bypass is
	// only ever granted to files with a near-zero suspicion score, so
	// applying an obfuscating transformation can remove a bypass but never
	// grant one.
	if f.Score() > c.maxSuspicion() {
		return Escalate
	}
	if f.MaxLineLen >= c.minMinifiedLineLen() && f.WhitespaceRatio <= c.maxMinifiedWhitespace() {
		return BypassMinified
	}
	if f.MaxLineLen <= c.maxRegularLineLen() &&
		f.WhitespaceRatio >= c.minRegularWhitespace() &&
		f.Entropy <= c.maxRegularEntropy() {
		return BypassRegular
	}
	return Escalate
}

// Compute runs the single feature pass over src. The scan works on a
// canonical view of the text — CR dropped, [ \t]+ runs collapsed to one
// space, trailing spaces stripped — without materializing it: a pending-space
// state machine feeds the histogram, the line accounting, and the token
// matchers one canonical byte at a time.
//
//jslint:ignore hotpath-noalloc Features is the return value, built once.
func Compute(src string) Features {
	var f Features
	var hist [256]int32

	canon := 0    // canonical bytes emitted
	wsBytes := 0  // canonical whitespace bytes (space or \n)
	alnum := 0    // canonical ASCII alphanumeric bytes
	nonASCII := 0 // canonical bytes >= 0x80
	lineLen := 0  // current canonical line length
	pendingWS := false
	m := matchState{}

	emit := func(b byte) {
		hist[b]++
		canon++
		switch {
		case b == ' ':
			wsBytes++
			lineLen++
		case b == '\n':
			wsBytes++
			f.Lines++
			if lineLen > f.MaxLineLen {
				f.MaxLineLen = lineLen
			}
			lineLen = 0
		default:
			lineLen++
			if b >= 0x80 {
				nonASCII++
			} else if isAlnumByte(b) {
				alnum++
			}
		}
		m.feed(b, &f)
	}

	for i := 0; i < len(src); i++ {
		b := src[i]
		switch b {
		case '\r':
			// dropped: CRLF and LF render identically.
		case ' ', '\t':
			pendingWS = true
		case '\n':
			pendingWS = false // trailing whitespace stripped
			emit('\n')
		default:
			if pendingWS {
				emit(' ')
				pendingWS = false
			}
			emit(b)
		}
	}
	if lineLen > 0 || (canon > 0 && src[len(src)-1] != '\n') {
		f.Lines++
		if lineLen > f.MaxLineLen {
			f.MaxLineLen = lineLen
		}
	}
	m.flush(&f)

	f.Bytes = canon
	if canon == 0 {
		return f
	}
	f.WhitespaceRatio = float64(wsBytes) / float64(canon)
	f.AlnumRatio = float64(alnum) / float64(canon)
	f.NonASCIIRatio = float64(nonASCII) / float64(canon)
	if f.Lines > 0 {
		// Mean over canonical content bytes (newlines excluded).
		f.MeanLineLen = float64(canon-f.Lines) / float64(f.Lines)
		if f.MeanLineLen < 0 {
			f.MeanLineLen = 0
		}
	}
	total := float64(canon)
	for _, n := range hist {
		if n == 0 {
			continue
		}
		p := float64(n) / total
		f.Entropy -= p * math.Log2(p)
	}
	return f
}

// matchState runs the token matchers over the canonical byte stream: word
// matching for eval/Function/atob/case, escape sequences, _0x prefixes,
// base64 runs, and the "base64," data-URI marker.
type matchState struct {
	prevWord bool // previous byte was a word byte (identifier continuation)
	word     [8]byte
	wordLen  int // 0..8; 9 means "too long, not a keyword"

	escape int // position in a \xNN or \uNNNN match; 0 = idle
	escHex bool

	b64Run int // current [A-Za-z0-9+/=] run length

	uriPos int // position in "base64," marker

	inStr  byte // 0 = outside any string literal, else the quote byte
	strEsc bool // inside a string, previous byte was an unconsumed backslash

	// Literal-operator-literal matcher for ConstCmps and StrConcats. States:
	// 0 idle, 1 literal just closed, 2 inside an ==/===/!=/!== run after a
	// literal, 3 equality operator complete, 4 `+` seen after a string
	// literal. A single canonical space is transparent; anything else resets.
	litCmp int
	litStr bool // the literal that opened the match was a string
	cmpLen int  // operator run length in state 2
	cmpRel bool // state-2 run is relational (< >) rather than equality
	// litTaint marks that the next literal is glued to a larger expression
	// by a preceding arithmetic or bitwise operator (`row.id % 3 !== 0`):
	// such a literal is an operand, not the comparison's left side.
	litTaint bool

	ccPos  int // position in "fromCharCode" marker
	pctPos int // position in a %XX percent-escape inside a string
}

// wordByte reports identifier-ish bytes.
func isWordByte(b byte) bool {
	return b == '_' || b == '$' || isAlnumByte(b)
}

func isAlnumByte(b byte) bool {
	return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

func isHexByte(b byte) bool {
	return (b >= '0' && b <= '9') || (b >= 'a' && b <= 'f') || (b >= 'A' && b <= 'F')
}

// feed consumes one canonical byte.
func (m *matchState) feed(b byte, f *Features) {
	// Payload matchers (escapes, base64 runs, data-URI markers) see every
	// byte: their targets live inside string literals.
	m.feedPayload(b, f)

	// The word and comparison matchers skip string contents: an identifier
	// or `===` inside a string is data, not code.
	if m.inStr != 0 {
		switch {
		case m.strEsc:
			m.strEsc = false
		case b == '\\':
			m.strEsc = true
		case b == m.inStr:
			// String literal closed: it can be the left operand of a
			// comparison or concatenation.
			m.inStr = 0
			if m.litTaint {
				m.litTaint = false
				m.litCmp = 0
			} else {
				m.litCmp = 1
				m.litStr = true
			}
		case b == '\n':
			// Unterminated on this line (template or desync): bail out.
			m.inStr = 0
			m.litCmp = 0
		}
		return
	}

	wasWord := m.prevWord

	// Whole-word matcher: collect runs of word bytes (bounded at 8; longer
	// words cannot be one of the monitored keywords).
	if isWordByte(b) {
		if !m.prevWord {
			m.wordLen = 0
		}
		if m.wordLen < len(m.word) {
			m.word[m.wordLen] = b
			m.wordLen++
		} else {
			m.wordLen = len(m.word) + 1 // poison: too long
		}
		m.prevWord = true
	} else {
		if m.prevWord {
			m.closeWord(f)
		}
		m.prevWord = false
	}

	m.feedCmp(b, wasWord, f)
}

// cmpValid reports whether the operator run collected in state 2 spells a
// comparison: ==, ===, != or !== for equality runs, < or <= (and > / >=) for
// relational runs. A lone = is assignment; << and >> are shifts.
func (m *matchState) cmpValid() bool {
	if m.cmpRel {
		return m.cmpLen == 1 || m.cmpLen == 2
	}
	return m.cmpLen == 2 || m.cmpLen == 3
}

// feedCmp advances the literal-operator-literal matcher; wasWord is the word
// state before this byte, so a digit is only a literal start when it begins a
// token.
func (m *matchState) feedCmp(b byte, wasWord bool, f *Features) {
	switch {
	case b == '"' || b == '\'':
		if m.litCmp == 3 || (m.litCmp == 2 && m.cmpValid()) {
			f.ConstCmps++
		} else if m.litCmp == 4 && m.litStr {
			f.StrConcats++
		}
		m.litCmp = 0
		m.inStr = b
		m.strEsc = false
	case b == ' ':
		if m.litCmp == 2 {
			if m.cmpValid() {
				m.litCmp = 3
			} else {
				m.litCmp = 0
			}
		}
		// States 1, 3 and 4 see through a single canonical space.
	case b == '=' || b == '!':
		switch m.litCmp {
		case 1:
			m.litCmp = 2
			m.cmpLen = 1
			m.cmpRel = false
		case 2:
			max := 3
			if m.cmpRel {
				max = 2 // <= / >=
			}
			if b == '!' || m.cmpLen >= max {
				m.litCmp = 0
			} else {
				m.cmpLen++
			}
		default:
			m.litCmp = 0
		}
	case b == '<' || b == '>':
		if m.litCmp == 1 && !m.litStr {
			m.litCmp = 2
			m.cmpLen = 1
			m.cmpRel = true
		} else {
			// A second < or > is a shift (1 << 2), not a comparison.
			m.litCmp = 0
			m.litTaint = true
		}
	case b == '.':
		if m.litCmp == 1 && m.litStr {
			f.QuoteCalls++
		}
		m.litCmp = 0
	case b == '+':
		switch {
		case m.litCmp == 1 && m.litStr:
			m.litCmp = 4
		case m.litCmp == 1:
			m.litCmp = 0 // numeric const chain: 1 + 2 === 3 stays constant
		default:
			m.litCmp = 0
			m.litTaint = true
		}
	case b == '%' || b == '*' || b == '/' || b == '-' ||
		b == '&' || b == '|' || b == '^':
		if m.litCmp == 1 && !m.litStr {
			m.litCmp = 0 // numeric const chain: 8 * 8 < 8 stays constant
		} else {
			m.litCmp = 0
			m.litTaint = true
		}
	case !wasWord && b >= '0' && b <= '9':
		if m.litCmp == 3 || (m.litCmp == 2 && m.cmpValid()) {
			f.ConstCmps++
		}
		m.litCmp = 0
	default:
		if !isWordByte(b) || !wasWord {
			m.litCmp = 0
		}
		// A word continuing (wasWord && word byte) leaves the matcher
		// alone: closeWord decides what the token was.
	}
}

// feedPayload runs the matchers that inspect string payloads and raw text.
func (m *matchState) feedPayload(b byte, f *Features) {
	// Escape sequences: backslash starts, x/u selects, hex digits confirm.
	switch {
	case m.escape == 0:
		if b == '\\' {
			m.escape = 1
		}
	case m.escape == 1:
		switch b {
		case 'x':
			m.escHex = true
			m.escape = 2
		case 'u':
			m.escHex = false
			m.escape = 2
		case '\\':
			m.escape = 1 // \\\x still starts an escape at the second slash
		default:
			m.escape = 0
		}
	default:
		if !isHexByte(b) && !(b == '{' && m.escape == 2 && !m.escHex) {
			m.escape = 0
			if b == '\\' {
				m.escape = 1
			}
			break
		}
		m.escape++
		if m.escHex && m.escape == 4 { // \xNN
			f.HexEscapes++
			m.escape = 0
		} else if !m.escHex && m.escape == 6 { // \uNNNN (or \u{NNNN)
			f.UnicodeEscapes++
			m.escape = 0
		}
	}

	// Base64 runs: count maximal runs of the base64 alphabet >= 24 bytes.
	if isAlnumByte(b) || b == '+' || b == '/' || b == '=' {
		m.b64Run++
	} else {
		if m.b64Run >= 24 {
			f.Base64Runs++
		}
		m.b64Run = 0
	}

	// data: URI payload marker "base64,".
	const marker = "base64,"
	if b == marker[m.uriPos] {
		m.uriPos++
		if m.uriPos == len(marker) {
			f.DataURIHits++
			m.uriPos = 0
		}
	} else if b == marker[0] {
		m.uriPos = 1
	} else {
		m.uriPos = 0
	}

	// Character-code decoder marker "fromCharCode".
	const ccMarker = "fromCharCode"
	if b == ccMarker[m.ccPos] {
		m.ccPos++
		if m.ccPos == len(ccMarker) {
			f.CharCodeHits++
			m.ccPos = 0
		}
	} else if b == ccMarker[0] {
		m.ccPos = 1
	} else {
		m.ccPos = 0
	}

	// %XX percent escapes, only inside string literals.
	switch {
	case m.inStr == 0 || b == '%':
		if b == '%' && m.inStr != 0 {
			m.pctPos = 1
		} else {
			m.pctPos = 0
		}
	case m.pctPos > 0 && isHexByte(b):
		m.pctPos++
		if m.pctPos == 3 {
			f.PercentEscapes++
			m.pctPos = 0
		}
	default:
		m.pctPos = 0
	}
}

// closeWord scores a completed word run.
func (m *matchState) closeWord(f *Features) {
	switch {
	case m.wordLen == 4 && string(m.word[:4]) == "eval":
		f.EvalCount++
	case m.wordLen == 8 && string(m.word[:8]) == "Function":
		f.FunctionCount++
	case m.wordLen == 4 && string(m.word[:4]) == "atob":
		f.AtobCount++
	case m.wordLen == 4 && string(m.word[:4]) == "case":
		f.CaseCount++
	}
	// _0x prefix: the obfuscator-idiom identifier family. The first bytes of
	// a too-long word are still in the buffer, so the prefix check covers
	// realistic _0x1a2b3c-style names too.
	if m.wordLen >= 3 && m.word[0] == '_' && m.word[1] == '0' && m.word[2] == 'x' {
		f.HexIdents++
	}
	// A token starting with a digit is a numeric literal: it can open a
	// literal-vs-literal comparison — unless it is glued to a larger
	// expression by a preceding operator. Any other word resets the
	// matcher: identifiers are not literals.
	if m.wordLen >= 1 && m.word[0] >= '0' && m.word[0] <= '9' && !m.litTaint {
		m.litCmp = 1
		m.litStr = false
	} else {
		m.litCmp = 0
	}
	m.litTaint = false
	m.wordLen = 0
}

// flush closes any run still open at end of input.
func (m *matchState) flush(f *Features) {
	if m.prevWord {
		m.closeWord(f)
	}
	if m.b64Run >= 24 {
		f.Base64Runs++
	}
}
