package deobfuscate

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/js/parser"
	"repro/internal/transform"
)

func deob(t *testing.T, src string) (string, Report) {
	t.Helper()
	out, report, err := Source(src, Options{})
	if err != nil {
		t.Fatalf("deobfuscate: %v", err)
	}
	if _, err := parser.ParseProgram(out); err != nil {
		t.Fatalf("output does not reparse: %v\n%s", err, out)
	}
	return out, report
}

func TestFoldConcatenation(t *testing.T) {
	out, rep := deob(t, `var msg = "he" + "llo" + " " + "world";`)
	if !strings.Contains(out, `"hello world"`) {
		t.Fatalf("concatenation not folded:\n%s", out)
	}
	if rep.FoldedStrings == 0 {
		t.Fatal("report must count folds")
	}
}

func TestFoldFromCharCode(t *testing.T) {
	out, _ := deob(t, `var s = String.fromCharCode(104, 105);`)
	if !strings.Contains(out, `"hi"`) {
		t.Fatalf("fromCharCode not folded:\n%s", out)
	}
}

func TestFoldAtob(t *testing.T) {
	out, _ := deob(t, `var s = atob("aGVsbG8=");`)
	if !strings.Contains(out, `"hello"`) {
		t.Fatalf("atob not folded:\n%s", out)
	}
}

func TestFoldPercentDecode(t *testing.T) {
	out, _ := deob(t, `var s = decodeURIComponent("%68%69");`)
	if !strings.Contains(out, `"hi"`) {
		t.Fatalf("percent decoding not folded:\n%s", out)
	}
}

func TestFoldReverseChain(t *testing.T) {
	out, _ := deob(t, `var s = "olleh".split("").reverse().join("");`)
	if !strings.Contains(out, `"hello"`) {
		t.Fatalf("reverse chain not folded:\n%s", out)
	}
}

func TestResolveGlobalArray(t *testing.T) {
	src := `
var _0x1a2b = ["log", "hello"];
function _0xf(i) { return _0x1a2b[i - 100]; }
console[_0xf(100)](_0xf(101));
`
	out, rep := deob(t, src)
	if !strings.Contains(out, `"hello"`) {
		t.Fatalf("array reference not resolved:\n%s", out)
	}
	if strings.Contains(out, "_0x1a2b") {
		t.Fatalf("resolved table must be removed:\n%s", out)
	}
	if rep.ResolvedArrayRefs != 2 || rep.RemovedArrays != 1 {
		t.Fatalf("report = %+v", rep)
	}
	// With the dot rewrite, console["log"] becomes console.log.
	if !strings.Contains(out, "console.log") {
		t.Fatalf("expected dot access after cleanup:\n%s", out)
	}
}

func TestResolveDirectIndexing(t *testing.T) {
	src := `var table = ["a", "b", "c"]; use(table[1]);`
	out, _ := deob(t, src)
	if !strings.Contains(out, `use("b")`) {
		t.Fatalf("direct indexing not resolved:\n%s", out)
	}
}

func TestKeepArrayWithDynamicAccess(t *testing.T) {
	src := `var table = ["a", "b"]; use(table[i]);`
	out, _ := deob(t, src)
	if !strings.Contains(out, "table") {
		t.Fatalf("table with dynamic access must survive:\n%s", out)
	}
}

func TestUnflatten(t *testing.T) {
	src := `
var _0xa = "1|2|0".split("|"), _0xb = 0;
while (true) {
  switch (_0xa[_0xb++]) {
  case "0":
    third();
    continue;
  case "1":
    first();
    continue;
  case "2":
    second();
    continue;
  }
  break;
}
`
	out, rep := deob(t, src)
	if rep.UnflattenedBlocks != 1 {
		t.Fatalf("report = %+v\n%s", rep, out)
	}
	iFirst := strings.Index(out, "first()")
	iSecond := strings.Index(out, "second()")
	iThird := strings.Index(out, "third()")
	if iFirst < 0 || iSecond < 0 || iThird < 0 || !(iFirst < iSecond && iSecond < iThird) {
		t.Fatalf("statements not restored in execution order:\n%s", out)
	}
	if strings.Contains(out, "while") || strings.Contains(out, "switch") {
		t.Fatalf("dispatcher must be gone:\n%s", out)
	}
}

func TestPruneOpaquePredicates(t *testing.T) {
	src := `
if (171 === 203) { junk = 1; }
if ("xk" == "xq") { other = 2; } else { keepMe(); }
while (5 * 5 < 5) { dead(); }
real();
`
	out, rep := deob(t, src)
	if strings.Contains(out, "junk") || strings.Contains(out, "dead") {
		t.Fatalf("dead branches must be pruned:\n%s", out)
	}
	if !strings.Contains(out, "keepMe") || !strings.Contains(out, "real()") {
		t.Fatalf("live code must survive:\n%s", out)
	}
	if rep.PrunedBranches < 3 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestBracketToDot(t *testing.T) {
	out, rep := deob(t, `obj["method"](data["key"]); obj["not-ident"] = 1; obj["class"] = 2;`)
	if !strings.Contains(out, "obj.method(data.key)") {
		t.Fatalf("bracket access not dotted:\n%s", out)
	}
	if !strings.Contains(out, `obj["not-ident"]`) {
		t.Fatalf("invalid identifier must stay bracketed:\n%s", out)
	}
	if !strings.Contains(out, `obj["class"]`) {
		t.Fatalf("reserved word must stay bracketed:\n%s", out)
	}
	if rep.DottedAccesses != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRenameHexIdentifiers(t *testing.T) {
	src := `var _0x3fa2c1 = 1; function _0xabc(_0xdef) { return _0xdef + _0x3fa2c1; } _0xabc(2);`
	out, rep := deob(t, src)
	if strings.Contains(out, "_0x") {
		t.Fatalf("hex identifiers must be renamed:\n%s", out)
	}
	if rep.RenamedIdents != 3 {
		t.Fatalf("renamed = %d, want 3", rep.RenamedIdents)
	}
	if !strings.Contains(out, "v1") {
		t.Fatalf("expected sequential names:\n%s", out)
	}
}

func TestEndToEndAgainstTransformers(t *testing.T) {
	src := `
function greet(name) {
  if (!name) { return "hello stranger"; }
  return "hello " + name;
}
console.log(greet("world"));
console.log(greet(""));
`
	rng := rand.New(rand.NewSource(5))
	obfuscated, err := transform.Transform(src, rng,
		transform.StringObfuscation, transform.GlobalArray, transform.DeadCodeInjection)
	if err != nil {
		t.Fatal(err)
	}
	out, rep := deob(t, obfuscated)
	if rep.Total() == 0 {
		t.Fatalf("no rewrites applied to obfuscated input:\n%s", obfuscated)
	}
	// The original strings must be back in the clear.
	if !strings.Contains(out, "hello") {
		t.Fatalf("strings not recovered:\n%s", out)
	}
}

func TestUnflattenRoundTrip(t *testing.T) {
	src := `
function run() {
  setup();
  compute();
  finish();
  report();
}
run();
`
	rng := rand.New(rand.NewSource(9))
	flattened, err := transform.Transform(src, rng, transform.ControlFlowFlattening)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(flattened, "switch") {
		t.Fatalf("input was not flattened:\n%s", flattened)
	}
	out, rep := deob(t, flattened)
	if rep.UnflattenedBlocks == 0 {
		t.Fatalf("flattening not reversed:\n%s", out)
	}
	iSetup := strings.Index(out, "setup()")
	iCompute := strings.Index(out, "compute()")
	iFinish := strings.Index(out, "finish()")
	iReport := strings.Index(out, "report()")
	if !(iSetup >= 0 && iSetup < iCompute && iCompute < iFinish && iFinish < iReport) {
		t.Fatalf("execution order not restored:\n%s", out)
	}
}

func TestOptionsSkipPasses(t *testing.T) {
	src := `var s = "a" + "b"; obj["k"] = 1;`
	out, rep, err := Source(src, Options{SkipStringFolding: true, SkipDotRewrite: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FoldedStrings != 0 || rep.DottedAccesses != 0 {
		t.Fatalf("skipped passes ran: %+v", rep)
	}
	if !strings.Contains(out, `"a" + "b"`) {
		t.Fatalf("concatenation must survive when skipped:\n%s", out)
	}
}

func TestParseErrorPropagates(t *testing.T) {
	if _, _, err := Source("var = ;;;", Options{}); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestReportString(t *testing.T) {
	r := Report{FoldedStrings: 2, Iterations: 1}
	if !strings.Contains(r.String(), "folded 2 strings") {
		t.Fatalf("report string = %q", r.String())
	}
}

func TestKeepAccessorWhenAliased(t *testing.T) {
	src := `
var table = ["a", "b"];
function acc(i) { return table[i]; }
var alias = acc;
use(alias(0), acc(1));
`
	out, _ := deob(t, src)
	// acc(1) resolves, but alias(0) cannot; the table and accessor must
	// survive for the alias to keep working.
	if !strings.Contains(out, "function") || !strings.Contains(out, "alias") {
		t.Fatalf("aliased accessor must survive:\n%s", out)
	}
	if !strings.Contains(out, "table") {
		t.Fatalf("table must survive while the accessor lives:\n%s", out)
	}
}
