package deobfuscate

import (
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/walker"
)

// unflatten reverses control-flow flattening: it recognizes the dispatcher
//
//	var ORDER = "2|0|1".split("|"), I = 0;
//	while (true) {
//	  switch (ORDER[I++]) {
//	  case "0": stmtA; continue;
//	  ...
//	  }
//	  break;
//	}
//
// and restores the statements in execution order.
func unflatten(prog *ast.Program, r *Report) {
	unflattenList(&prog.Body, r)
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		switch v := n.(type) {
		case *ast.FunctionDeclaration:
			if v.Body != nil {
				unflattenList(&v.Body.Body, r)
			}
		case *ast.FunctionExpression:
			if v.Body != nil {
				unflattenList(&v.Body.Body, r)
			}
		case *ast.ArrowFunctionExpression:
			if blk, ok := v.Body.(*ast.BlockStatement); ok {
				unflattenList(&blk.Body, r)
			}
		case *ast.BlockStatement:
			unflattenList(&v.Body, r)
		}
		return true
	})
}

func unflattenList(body *[]ast.Node, r *Report) {
	stmts := *body
	var out []ast.Node
	changed := false
	for i := 0; i < len(stmts); i++ {
		if i+1 < len(stmts) {
			if restored, ok := matchDispatcher(stmts[i], stmts[i+1]); ok {
				out = append(out, restored...)
				i++ // consumed the while loop too
				changed = true
				r.UnflattenedBlocks++
				continue
			}
		}
		out = append(out, stmts[i])
	}
	if changed {
		*body = out
	}
}

// matchDispatcher matches the declaration+loop pair and returns the
// statements in execution order.
func matchDispatcher(declStmt, loopStmt ast.Node) ([]ast.Node, bool) {
	decl, ok := declStmt.(*ast.VariableDeclaration)
	if !ok || len(decl.Declarations) != 2 {
		return nil, false
	}
	orderName, labels, ok := matchOrderDeclarator(decl.Declarations[0])
	if !ok {
		return nil, false
	}
	idxName, ok := matchZeroDeclarator(decl.Declarations[1])
	if !ok {
		return nil, false
	}

	loop, ok := loopStmt.(*ast.WhileStatement)
	if !ok {
		return nil, false
	}
	test, ok := loop.Test.(*ast.Literal)
	if !ok || test.Kind != ast.LiteralBoolean || !test.Bool {
		return nil, false
	}
	blk, ok := loop.Body.(*ast.BlockStatement)
	if !ok || len(blk.Body) != 2 {
		return nil, false
	}
	sw, ok := blk.Body[0].(*ast.SwitchStatement)
	if !ok {
		return nil, false
	}
	if _, ok := blk.Body[1].(*ast.BreakStatement); !ok {
		return nil, false
	}
	if !matchDiscriminant(sw.Discriminant, orderName, idxName) {
		return nil, false
	}

	// Map case label → statement (each case must be [stmt, continue]).
	byLabel := make(map[string]ast.Node, len(sw.Cases))
	for _, c := range sw.Cases {
		lit, ok := c.Test.(*ast.Literal)
		if !ok || lit.Kind != ast.LiteralString {
			return nil, false
		}
		if len(c.Consequent) != 2 {
			return nil, false
		}
		if _, ok := c.Consequent[1].(*ast.ContinueStatement); !ok {
			return nil, false
		}
		byLabel[lit.String] = c.Consequent[0]
	}

	out := make([]ast.Node, 0, len(labels))
	for _, label := range labels {
		stmt, ok := byLabel[label]
		if !ok {
			return nil, false
		}
		out = append(out, stmt)
	}
	return out, true
}

// matchOrderDeclarator matches `X = "a|b|c".split("|")` and returns X plus
// the labels in order.
func matchOrderDeclarator(d *ast.VariableDeclarator) (string, []string, bool) {
	id, ok := d.ID.(*ast.Identifier)
	if !ok {
		return "", nil, false
	}
	call, ok := d.Init.(*ast.CallExpression)
	if !ok || len(call.Arguments) != 1 {
		return "", nil, false
	}
	m, ok := call.Callee.(*ast.MemberExpression)
	if !ok || m.Computed || !isIdent(m.Property, "split") {
		return "", nil, false
	}
	lit, ok := m.Object.(*ast.Literal)
	if !ok || lit.Kind != ast.LiteralString {
		return "", nil, false
	}
	sep, ok := call.Arguments[0].(*ast.Literal)
	if !ok || sep.Kind != ast.LiteralString || sep.String != "|" {
		return "", nil, false
	}
	return id.Name, strings.Split(lit.String, "|"), true
}

// matchZeroDeclarator matches `I = 0`.
func matchZeroDeclarator(d *ast.VariableDeclarator) (string, bool) {
	id, ok := d.ID.(*ast.Identifier)
	if !ok {
		return "", false
	}
	n, ok := numLit(d.Init)
	if !ok || n != 0 {
		return "", false
	}
	return id.Name, true
}

// matchDiscriminant matches `ORDER[I++]`.
func matchDiscriminant(n ast.Node, orderName, idxName string) bool {
	m, ok := n.(*ast.MemberExpression)
	if !ok || !m.Computed || !isIdent(m.Object, orderName) {
		return false
	}
	upd, ok := m.Property.(*ast.UpdateExpression)
	if !ok || upd.Operator != "++" || upd.Prefix {
		return false
	}
	return isIdent(upd.Argument, idxName)
}

// ---------------------------------------------------------------------------
// Dead-branch pruning
// ---------------------------------------------------------------------------

// pruneDeadBranches removes branches with statically false tests: literal
// false, constant numeric/string comparisons, and `while (<false>) ...`
// loops (the dead-code injection traces).
func pruneDeadBranches(prog *ast.Program, r *Report) {
	walker.Rewrite(prog, func(n ast.Node) ast.Node {
		switch v := n.(type) {
		case *ast.IfStatement:
			verdict, known := constBool(v.Test)
			if !known {
				return n
			}
			r.PrunedBranches++
			if verdict {
				return v.Consequent
			}
			if v.Alternate != nil {
				return v.Alternate
			}
			return &ast.EmptyStatement{}
		case *ast.WhileStatement:
			if verdict, known := constBool(v.Test); known && !verdict {
				r.PrunedBranches++
				return &ast.EmptyStatement{}
			}
		}
		return n
	})
	// Drop the EmptyStatements left behind.
	stripEmpty(&prog.Body)
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		if blk, ok := n.(*ast.BlockStatement); ok {
			stripEmpty(&blk.Body)
		}
		return true
	})
}

func stripEmpty(body *[]ast.Node) {
	var out []ast.Node
	for _, s := range *body {
		if _, ok := s.(*ast.EmptyStatement); ok {
			continue
		}
		out = append(out, s)
	}
	*body = out
}

// constBool statically evaluates comparison tests over literals.
func constBool(n ast.Node) (value, known bool) {
	switch v := n.(type) {
	case *ast.Literal:
		switch v.Kind {
		case ast.LiteralBoolean:
			return v.Bool, true
		case ast.LiteralNumber:
			return v.Number != 0, true
		case ast.LiteralString:
			return v.String != "", true
		case ast.LiteralNull:
			return false, true
		}
	case *ast.BinaryExpression:
		l, lok := literalValue(v.Left)
		rv, rok := literalValue(v.Right)
		if !lok || !rok {
			return false, false
		}
		switch v.Operator {
		case "===", "==":
			return l == rv, true
		case "!==", "!=":
			return l != rv, true
		case "<":
			ln, lo := l.(float64)
			rn, ro := rv.(float64)
			if lo && ro {
				return ln < rn, true
			}
		case ">":
			ln, lo := l.(float64)
			rn, ro := rv.(float64)
			if lo && ro {
				return ln > rn, true
			}
		}
	}
	return false, false
}

// literalValue evaluates literals and constant arithmetic to comparable Go
// values.
func literalValue(n ast.Node) (any, bool) {
	switch v := n.(type) {
	case *ast.Literal:
		switch v.Kind {
		case ast.LiteralNumber:
			return v.Number, true
		case ast.LiteralString:
			return v.String, true
		case ast.LiteralBoolean:
			return v.Bool, true
		}
	case *ast.BinaryExpression:
		l, lok := literalValue(v.Left)
		r, rok := literalValue(v.Right)
		if !lok || !rok {
			return nil, false
		}
		ln, lo := l.(float64)
		rn, ro := r.(float64)
		if !lo || !ro {
			return nil, false
		}
		switch v.Operator {
		case "+":
			return ln + rn, true
		case "-":
			return ln - rn, true
		case "*":
			return ln * rn, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Cosmetic passes
// ---------------------------------------------------------------------------

// rewriteBracketsToDots turns a["prop"] into a.prop when prop is a valid
// identifier (reversing obfuscated field references).
func rewriteBracketsToDots(prog *ast.Program, r *Report) {
	walker.Rewrite(prog, func(n ast.Node) ast.Node {
		m, ok := n.(*ast.MemberExpression)
		if !ok || !m.Computed {
			return n
		}
		lit, ok := m.Property.(*ast.Literal)
		if !ok || lit.Kind != ast.LiteralString || !isValidIdentName(lit.String) {
			return n
		}
		r.DottedAccesses++
		return &ast.MemberExpression{
			Object:   m.Object,
			Property: ast.NewIdentifier(lit.String),
			Optional: m.Optional,
		}
	})
}

var jsReserved = map[string]bool{
	"break": true, "case": true, "catch": true, "class": true, "const": true,
	"continue": true, "debugger": true, "default": true, "delete": true,
	"do": true, "else": true, "export": true, "extends": true, "finally": true,
	"for": true, "function": true, "if": true, "import": true, "in": true,
	"instanceof": true, "new": true, "return": true, "super": true,
	"switch": true, "this": true, "throw": true, "try": true, "typeof": true,
	"var": true, "void": true, "while": true, "with": true, "yield": true,
	"let": true, "true": true, "false": true, "null": true,
}

func isValidIdentName(s string) bool {
	if s == "" || jsReserved[s] {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		letter := c == '$' || c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
		digit := c >= '0' && c <= '9'
		if i == 0 && !letter {
			return false
		}
		if !letter && !digit {
			return false
		}
	}
	return true
}

// renameHexIdentifiers renames obfuscator-style hex names (_0x3fa2c1) to
// sequential readable names (v1, v2, ...), preserving scoping via the
// binding analysis.
func renameHexIdentifiers(prog *ast.Program, r *Report) {
	renamed := renameMatching(prog, func(name string) bool {
		return strings.HasPrefix(name, "_0x") || strings.HasPrefix(name, "_f")
	})
	r.RenamedIdents += renamed
}
