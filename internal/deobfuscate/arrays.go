package deobfuscate

import (
	"repro/internal/js/ast"
	"repro/internal/js/walker"
)

// resolveGlobalArrays undoes the global-array technique: it finds
//
//	var T = ["a", "b", ...];
//	function F(i) { return T[i - OFFSET]; }
//
// (with or without the accessor and offset), replaces F(n) calls and
// T[n] accesses with the referenced string literal, and drops the table and
// accessor once every reference has been resolved.
func resolveGlobalArrays(prog *ast.Program, r *Report) {
	tables := findStringTables(prog)
	if len(tables) == 0 {
		return
	}
	accessors := findAccessors(prog, tables)
	internal := accessorBodyAccesses(prog, accessors)

	// Pass 1: replace references.
	resolved := make(map[string]bool) // table names fully resolvable
	for name := range tables {
		resolved[name] = true
	}
	walker.Rewrite(prog, func(n ast.Node) ast.Node {
		switch v := n.(type) {
		case *ast.MemberExpression:
			// T[<number>] — but not the accessor's own body access.
			if !v.Computed || internal[v] {
				return n
			}
			obj, ok := v.Object.(*ast.Identifier)
			if !ok {
				return n
			}
			table, ok := tables[obj.Name]
			if !ok {
				return n
			}
			idx, ok := numLit(v.Property)
			if !ok || idx < 0 || idx >= len(table.values) {
				resolved[obj.Name] = false
				return n
			}
			r.ResolvedArrayRefs++
			return ast.NewString(table.values[idx])
		case *ast.CallExpression:
			// F(<number>)
			callee, ok := v.Callee.(*ast.Identifier)
			if !ok {
				return n
			}
			acc, ok := accessors[callee.Name]
			if !ok || len(v.Arguments) != 1 {
				return n
			}
			idx, ok := numLit(v.Arguments[0])
			if !ok {
				resolved[acc.table] = false
				return n
			}
			real := idx - acc.offset
			table := tables[acc.table]
			if real < 0 || real >= len(table.values) {
				resolved[acc.table] = false
				return n
			}
			r.ResolvedArrayRefs++
			return ast.NewString(table.values[real])
		}
		return n
	})

	// Pass 2: drop fully-resolved tables and their accessors if no other
	// references remain.
	remaining := make(map[string]int)
	walker.Walk(prog, func(n ast.Node, _ int) bool {
		if id, ok := n.(*ast.Identifier); ok {
			remaining[id.Name]++
		}
		return true
	})
	removable := make(map[string]bool)
	for name, table := range tables {
		if !resolved[name] {
			continue
		}
		// The declaration itself counts one identifier occurrence; the
		// accessor body counts one more.
		uses := remaining[name]
		expected := 1
		acc := accessorOf(accessors, name)
		if acc != "" {
			expected = 2
			// The accessor may still be referenced (aliased, passed around,
			// or called with non-literal arguments that the rewrite left in
			// place); its only remaining occurrence must be its own
			// declaration.
			if remaining[acc] > 1 {
				continue
			}
		}
		if uses <= expected {
			removable[name] = true
			if acc != "" {
				removable[acc] = true
			}
			_ = table
		}
	}
	if len(removable) == 0 {
		return
	}
	var kept []ast.Node
	for _, stmt := range prog.Body {
		if name, ok := declaredTableName(stmt); ok && removable[name] {
			r.RemovedArrays++
			continue
		}
		if fn, ok := stmt.(*ast.FunctionDeclaration); ok && fn.ID != nil && removable[fn.ID.Name] {
			continue
		}
		kept = append(kept, stmt)
	}
	prog.Body = kept
}

// stringTable is one candidate global string array.
type stringTable struct {
	values []string
}

// findStringTables collects top-level `var X = ["...", ...]` declarations
// whose elements are all string literals.
func findStringTables(prog *ast.Program) map[string]*stringTable {
	tables := make(map[string]*stringTable)
	for _, stmt := range prog.Body {
		decl, ok := stmt.(*ast.VariableDeclaration)
		if !ok {
			continue
		}
		for _, d := range decl.Declarations {
			id, ok := d.ID.(*ast.Identifier)
			if !ok {
				continue
			}
			arr, ok := d.Init.(*ast.ArrayExpression)
			if !ok || len(arr.Elements) == 0 {
				continue
			}
			values := make([]string, 0, len(arr.Elements))
			allStrings := true
			for _, el := range arr.Elements {
				lit, ok := el.(*ast.Literal)
				if !ok || lit.Kind != ast.LiteralString {
					allStrings = false
					break
				}
				values = append(values, lit.String)
			}
			if allStrings && len(values) >= 1 {
				tables[id.Name] = &stringTable{values: values}
			}
		}
	}
	return tables
}

// accessorBodyAccesses collects the member expressions that ARE the
// accessors' return values, so the reference rewrite does not mistake them
// for unresolvable dynamic accesses.
func accessorBodyAccesses(prog *ast.Program, accessors map[string]accessorInfo) map[*ast.MemberExpression]bool {
	out := make(map[*ast.MemberExpression]bool)
	for _, stmt := range prog.Body {
		fn, ok := stmt.(*ast.FunctionDeclaration)
		if !ok || fn.ID == nil {
			continue
		}
		if _, isAccessor := accessors[fn.ID.Name]; !isAccessor {
			continue
		}
		ret := fn.Body.Body[0].(*ast.ReturnStatement)
		if m, ok := ret.Argument.(*ast.MemberExpression); ok {
			out[m] = true
		}
	}
	return out
}

// accessorInfo describes `function F(i) { return T[i - offset]; }`.
type accessorInfo struct {
	table  string
	offset int
}

// findAccessors matches top-level accessor functions over known tables.
func findAccessors(prog *ast.Program, tables map[string]*stringTable) map[string]accessorInfo {
	out := make(map[string]accessorInfo)
	for _, stmt := range prog.Body {
		fn, ok := stmt.(*ast.FunctionDeclaration)
		if !ok || fn.ID == nil || len(fn.Params) != 1 || fn.Body == nil || len(fn.Body.Body) != 1 {
			continue
		}
		param, ok := fn.Params[0].(*ast.Identifier)
		if !ok {
			continue
		}
		ret, ok := fn.Body.Body[0].(*ast.ReturnStatement)
		if !ok || ret.Argument == nil {
			continue
		}
		member, ok := ret.Argument.(*ast.MemberExpression)
		if !ok || !member.Computed {
			continue
		}
		tableID, ok := member.Object.(*ast.Identifier)
		if !ok {
			continue
		}
		if _, known := tables[tableID.Name]; !known {
			continue
		}
		offset, ok := accessorIndexOffset(member.Property, param.Name)
		if !ok {
			continue
		}
		out[fn.ID.Name] = accessorInfo{table: tableID.Name, offset: offset}
	}
	return out
}

// accessorIndexOffset matches `i`, `i - K`, or `i + K` and returns the
// offset such that table index = argument - offset.
func accessorIndexOffset(expr ast.Node, param string) (int, bool) {
	if isIdent(expr, param) {
		return 0, true
	}
	bin, ok := expr.(*ast.BinaryExpression)
	if !ok || !isIdent(bin.Left, param) {
		return 0, false
	}
	k, ok := numLit(bin.Right)
	if !ok {
		return 0, false
	}
	switch bin.Operator {
	case "-":
		return k, true
	case "+":
		return -k, true
	}
	return 0, false
}

func accessorOf(accessors map[string]accessorInfo, table string) string {
	for name, info := range accessors {
		if info.table == table {
			return name
		}
	}
	return ""
}

func declaredTableName(stmt ast.Node) (string, bool) {
	decl, ok := stmt.(*ast.VariableDeclaration)
	if !ok || len(decl.Declarations) != 1 {
		return "", false
	}
	id, ok := decl.Declarations[0].ID.(*ast.Identifier)
	if !ok {
		return "", false
	}
	if _, ok := decl.Declarations[0].Init.(*ast.ArrayExpression); !ok {
		return "", false
	}
	return id.Name, true
}

func numLit(n ast.Node) (int, bool) {
	lit, ok := n.(*ast.Literal)
	if !ok || lit.Kind != ast.LiteralNumber {
		return 0, false
	}
	v := int(lit.Number)
	if float64(v) != lit.Number {
		return 0, false
	}
	return v, true
}
