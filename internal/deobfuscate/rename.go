package deobfuscate

import (
	"fmt"

	"repro/internal/js/ast"
	"repro/internal/js/scope"
)

// renameMatching renames every binding whose name matches pred to a fresh
// sequential readable name (v1, v2, ...), updating all references. It
// returns the number of bindings renamed.
func renameMatching(prog *ast.Program, pred func(string) bool) int {
	info := scope.Analyze(prog)
	taken := make(map[string]bool)
	for _, b := range info.Bindings {
		taken[b.Name] = true
	}
	for _, id := range info.Unresolved {
		taken[id.Name] = true
	}
	renamed := 0
	counter := 0
	for _, b := range info.Bindings {
		if b.Decl == nil || !pred(b.Name) {
			continue
		}
		var name string
		for {
			counter++
			name = fmt.Sprintf("v%d", counter)
			if !taken[name] {
				break
			}
		}
		taken[name] = true
		b.Decl.Name = name
		for _, ref := range b.Refs {
			ref.Name = name
		}
		renamed++
	}
	return renamed
}
