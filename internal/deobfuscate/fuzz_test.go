package deobfuscate

import (
	"testing"

	"repro/internal/js/parser"
)

// FuzzDeobfuscate checks that the deobfuscator never panics and that its
// output always reparses.
func FuzzDeobfuscate(f *testing.F) {
	seeds := []string{
		`var s = "a" + "b" + String.fromCharCode(99);`,
		`var t = ["x", "y"]; function a(i) { return t[i]; } use(a(0));`,
		`var o = "1|0".split("|"), i = 0; while (true) { switch (o[i++]) { case "0": b(); continue; case "1": a(); continue; } break; }`,
		`if (1 === 2) { dead(); } else { live(); }`,
		`obj["key"]["other"] = atob("aGk=");`,
		`var _0xab = 1; use(_0xab);`,
		// Seeds drawn from the static-analysis rule fixtures.
		`var _list = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]; function fetch(i) { return _list[i - 2]; } fetch(2); fetch(3);`,
		`var order = "2|0|1".split("|"), i = 0; while (true) { switch (order[i++]) { case "0": first(); continue; case "1": second(); continue; case "2": third(); continue; } break; }`,
		`var probe = function () { var mark = probe.constructor("return /" + this + "/")().constructor("^([^ ]+( +[^ ]+)+)+[^ ]}"); return !mark.test(guard); }; probe();`,
		`(function () { return true; }).constructor("debugger").call("action"); setInterval(function () { check(); }, 4000);`,
		`var payload = atob("ZG9Tb21ldGhpbmcoKQ=="); eval(payload);`,
		`if (74 === 74 + 13) { neverRuns(); } else { runs(); } while ("ab" == "cd") { alsoNever(); }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		out, _, err := Source(src, Options{})
		if err != nil {
			return
		}
		if _, err := parser.ParseProgram(out); err != nil {
			t.Fatalf("deobfuscated output does not reparse: %v\ninput: %q\noutput: %q", err, src, out)
		}
	})
}
