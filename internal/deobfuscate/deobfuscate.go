// Package deobfuscate statically reverses the transformation techniques the
// detector recognizes, where a static inverse exists: string-expression
// folding (concatenation, fromCharCode, atob, percent-decoding, reversal),
// global string-array resolution, control-flow unflattening, dead-branch
// pruning, bracket-to-dot normalization, and hex-identifier renaming. It is
// the natural companion to detection — the paper's Section V-B suggests
// building on the detector for malware analysis, and analysts deobfuscate
// flagged samples as the next step.
package deobfuscate

import (
	"encoding/base64"
	"fmt"
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/printer"
	"repro/internal/js/walker"
)

// Report counts what each pass changed.
type Report struct {
	FoldedStrings     int
	ResolvedArrayRefs int
	RemovedArrays     int
	UnflattenedBlocks int
	PrunedBranches    int
	DottedAccesses    int
	RenamedIdents     int
	Iterations        int
}

// String summarizes the report.
func (r Report) String() string {
	return fmt.Sprintf(
		"folded %d strings, resolved %d array refs (removed %d arrays), unflattened %d blocks, pruned %d branches, dotted %d accesses, renamed %d identifiers in %d iterations",
		r.FoldedStrings, r.ResolvedArrayRefs, r.RemovedArrays, r.UnflattenedBlocks,
		r.PrunedBranches, r.DottedAccesses, r.RenamedIdents, r.Iterations)
}

// Total is the number of individual rewrites applied.
func (r Report) Total() int {
	return r.FoldedStrings + r.ResolvedArrayRefs + r.RemovedArrays +
		r.UnflattenedBlocks + r.PrunedBranches + r.DottedAccesses + r.RenamedIdents
}

// Options selects passes; the zero value enables everything.
type Options struct {
	SkipStringFolding bool
	SkipGlobalArray   bool
	SkipUnflatten     bool
	SkipDeadBranches  bool
	SkipDotRewrite    bool
	SkipRename        bool
	// MaxIterations bounds the fixpoint loop; zero means 8.
	MaxIterations int
}

func (o Options) maxIterations() int {
	if o.MaxIterations <= 0 {
		return 8
	}
	return o.MaxIterations
}

// Source deobfuscates JavaScript source text and pretty-prints the result.
func Source(src string, opts Options) (string, Report, error) {
	prog, err := parser.ParseProgram(src)
	if err != nil {
		return "", Report{}, fmt.Errorf("parse: %w", err)
	}
	report := Program(prog, opts)
	return printer.Pretty(prog), report, nil
}

// Program deobfuscates an AST in place.
func Program(prog *ast.Program, opts Options) Report {
	var total Report
	for i := 0; i < opts.maxIterations(); i++ {
		var round Report
		if !opts.SkipGlobalArray {
			resolveGlobalArrays(prog, &round)
		}
		if !opts.SkipStringFolding {
			foldStringExpressions(prog, &round)
		}
		if !opts.SkipUnflatten {
			unflatten(prog, &round)
		}
		if !opts.SkipDeadBranches {
			pruneDeadBranches(prog, &round)
		}
		total.FoldedStrings += round.FoldedStrings
		total.ResolvedArrayRefs += round.ResolvedArrayRefs
		total.RemovedArrays += round.RemovedArrays
		total.UnflattenedBlocks += round.UnflattenedBlocks
		total.PrunedBranches += round.PrunedBranches
		total.Iterations = i + 1
		if round.FoldedStrings+round.ResolvedArrayRefs+round.UnflattenedBlocks+round.PrunedBranches == 0 {
			break
		}
	}
	// One-shot cosmetic passes after the semantic fixpoint.
	if !opts.SkipDotRewrite {
		rewriteBracketsToDots(prog, &total)
	}
	if !opts.SkipRename {
		renameHexIdentifiers(prog, &total)
	}
	return total
}

// ---------------------------------------------------------------------------
// String-expression folding
// ---------------------------------------------------------------------------

// foldStringExpressions statically evaluates the string obfuscation
// patterns: "a"+"b", String.fromCharCode(...), atob("..."),
// decodeURIComponent("%.."), unescape, and "cba".split("").reverse()
// .join("").
func foldStringExpressions(prog *ast.Program, r *Report) {
	walker.Rewrite(prog, func(n ast.Node) ast.Node {
		if s, ok := evalStringExpr(n); ok {
			// Only count real folds, not literals that are already plain.
			if _, already := n.(*ast.Literal); !already {
				r.FoldedStrings++
				return ast.NewString(s)
			}
		}
		return n
	})
}

// evalStringExpr statically evaluates an expression to a string, when the
// expression is one of the known obfuscation shapes.
func evalStringExpr(n ast.Node) (string, bool) {
	switch v := n.(type) {
	case *ast.Literal:
		if v.Kind == ast.LiteralString {
			return v.String, true
		}
	case *ast.BinaryExpression:
		if v.Operator != "+" {
			return "", false
		}
		l, ok := evalStringExpr(v.Left)
		if !ok {
			return "", false
		}
		rhs, ok := evalStringExpr(v.Right)
		if !ok {
			return "", false
		}
		return l + rhs, true
	case *ast.CallExpression:
		return evalStringCall(v)
	}
	return "", false
}

func evalStringCall(call *ast.CallExpression) (string, bool) {
	// String.fromCharCode(…numbers…)
	if m, ok := call.Callee.(*ast.MemberExpression); ok && !m.Computed {
		if obj, ok := m.Object.(*ast.Identifier); ok && obj.Name == "String" {
			if prop, ok := m.Property.(*ast.Identifier); ok && prop.Name == "fromCharCode" {
				var sb strings.Builder
				for _, arg := range call.Arguments {
					lit, ok := arg.(*ast.Literal)
					if !ok || lit.Kind != ast.LiteralNumber {
						return "", false
					}
					sb.WriteRune(rune(int(lit.Number)))
				}
				return sb.String(), true
			}
		}
		// "cba".split("").reverse().join("")
		if s, ok := evalReverseChain(call); ok {
			return s, true
		}
	}
	if id, ok := call.Callee.(*ast.Identifier); ok && len(call.Arguments) == 1 {
		arg, ok := call.Arguments[0].(*ast.Literal)
		if !ok || arg.Kind != ast.LiteralString {
			return "", false
		}
		switch id.Name {
		case "atob":
			decoded, err := base64.StdEncoding.DecodeString(arg.String)
			if err != nil {
				return "", false
			}
			return string(decoded), true
		case "decodeURIComponent", "decodeURI", "unescape":
			return percentDecode(arg.String)
		}
	}
	return "", false
}

// evalReverseChain matches X.split("").reverse().join("") where X is a
// string literal, and returns the reversed string.
func evalReverseChain(join *ast.CallExpression) (string, bool) {
	jm, ok := join.Callee.(*ast.MemberExpression)
	if !ok || jm.Computed || !isIdent(jm.Property, "join") || !isEmptyStringArgs(join.Arguments) {
		return "", false
	}
	reverse, ok := jm.Object.(*ast.CallExpression)
	if !ok || len(reverse.Arguments) != 0 {
		return "", false
	}
	rm, ok := reverse.Callee.(*ast.MemberExpression)
	if !ok || rm.Computed || !isIdent(rm.Property, "reverse") {
		return "", false
	}
	split, ok := rm.Object.(*ast.CallExpression)
	if !ok {
		return "", false
	}
	sm, ok := split.Callee.(*ast.MemberExpression)
	if !ok || sm.Computed || !isIdent(sm.Property, "split") || !isEmptyStringArgs(split.Arguments) {
		return "", false
	}
	lit, ok := sm.Object.(*ast.Literal)
	if !ok || lit.Kind != ast.LiteralString {
		return "", false
	}
	runes := []rune(lit.String)
	for l, r := 0, len(runes)-1; l < r; l, r = l+1, r-1 {
		runes[l], runes[r] = runes[r], runes[l]
	}
	return string(runes), true
}

func isIdent(n ast.Node, name string) bool {
	id, ok := n.(*ast.Identifier)
	return ok && id.Name == name
}

func isEmptyStringArgs(args []ast.Node) bool {
	if len(args) != 1 {
		return false
	}
	lit, ok := args[0].(*ast.Literal)
	return ok && lit.Kind == ast.LiteralString && lit.String == ""
}

func percentDecode(s string) (string, bool) {
	var sb strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '%' && i+2 < len(s) && isHexByte(s[i+1]) && isHexByte(s[i+2]) {
			sb.WriteByte(hexVal(s[i+1])<<4 | hexVal(s[i+2]))
			i += 3
			continue
		}
		sb.WriteByte(s[i])
		i++
	}
	return sb.String(), true
}

func isHexByte(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

func hexVal(b byte) byte {
	switch {
	case b >= '0' && b <= '9':
		return b - '0'
	case b >= 'a' && b <= 'f':
		return b - 'a' + 10
	default:
		return b - 'A' + 10
	}
}
