package study

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/store"
)

// ---------------------------------------------------------------------------
// Cascade study — sharded crawl through triage + the verdict store
// ---------------------------------------------------------------------------

// CascadeShard summarizes one scanner pass over a slice of the crawl. The
// outcome columns are disjoint — a store or cache replay of a bypassed
// verdict counts as a hit, not a bypass — so Files is always their sum plus
// the full-pipeline scans.
type CascadeShard struct {
	Shard int
	Files int
	// Bypassed counts fresh stage-0 routing decisions; StoreHits verdicts
	// replayed from disk; Deduped verdicts replayed from the in-memory cache.
	Bypassed  int
	StoreHits int
	Deduped   int
	Duration  time.Duration
}

// FullScans is the number of files that paid the full
// parse→flow→features→infer cost in this pass.
func (s CascadeShard) FullScans() int {
	return s.Files - s.Bypassed - s.StoreHits - s.Deduped
}

// CascadeStudy is the sharded-crawl experiment: the Alexa-like and npm-like
// collections scanned through the stage-0 triage cascade by independent
// shard scanners sharing one on-disk verdict store, followed by a full
// re-crawl over the same content answered from the store.
type CascadeStudy struct {
	StoreDir string
	Shards   []CascadeShard
	// Recrawl is the second full pass: a fresh scanner (empty dedup cache)
	// over every script, after all shards have persisted their verdicts.
	Recrawl CascadeShard
	// Store is the verdict store's state after the re-crawl.
	Store store.Stats
}

// RunCascade runs the cascade experiment with the given shard count over the
// store directory dir, which the caller owns (pointing two runs at the same
// directory measures a warm re-deploy). Shards run sequentially — the point
// is the shared persistent state, not parallelism, which ScanBatch already
// provides internally.
func (r *Runner) RunCascade(dir string, shards int) (CascadeStudy, error) {
	st := CascadeStudy{StoreDir: dir}
	if shards < 1 {
		shards = 1
	}

	units := 40 * r.cfg.scale()
	alexa, err := corpus.BuildRanked(corpus.AlexaConfig(units), r.rng(601))
	if err != nil {
		return st, err
	}
	npm, err := corpus.BuildNpm(corpus.NpmConfig(units), r.rng(602))
	if err != nil {
		return st, err
	}
	files := append(alexa, npm...)
	inputs := make([]core.Input, len(files))
	for i, f := range files {
		inputs[i] = core.Input{Path: f.Name, Source: f.Source}
	}

	// One pass per shard, interleaved assignment so shard sizes stay even.
	// Each shard is its own scanner over the shared store — the crawl-scale
	// deployment shape, where worker processes share persisted verdicts but
	// not memory.
	scan := func(shard int, in []core.Input) (CascadeShard, error) {
		vs, err := store.Open(dir)
		if err != nil {
			return CascadeShard{}, err
		}
		defer vs.Close()
		scanner, err := core.NewScanner(r.Trained.Level1, r.Trained.Level2, core.ScanOptions{
			Triage:       true,
			VerdictStore: vs,
			Dedup:        true,
		})
		if err != nil {
			return CascadeShard{}, err
		}
		results, stats := scanner.ScanBatch(in)
		row := CascadeShard{Shard: shard, Files: stats.Files, Duration: stats.Duration}
		for i := range results {
			switch {
			case results[i].FromStore:
				row.StoreHits++
			case results[i].Deduped:
				row.Deduped++
			case results[i].Bypassed:
				row.Bypassed++
			}
		}
		return row, nil
	}

	for shard := 0; shard < shards; shard++ {
		var in []core.Input
		for i := shard; i < len(inputs); i += shards {
			in = append(in, inputs[i])
		}
		row, err := scan(shard, in)
		if err != nil {
			return st, err
		}
		st.Shards = append(st.Shards, row)
	}

	// The re-crawl: every script again, fresh scanner, warm store. Every
	// verdict should come off disk (or the in-batch dedup cache for repeated
	// contents) — zero full-pipeline scans.
	st.Recrawl, err = scan(-1, inputs)
	if err != nil {
		return st, err
	}

	vs, err := store.Open(dir)
	if err != nil {
		return st, err
	}
	st.Store = vs.Stats()
	if err := vs.Close(); err != nil {
		return st, err
	}
	return st, nil
}

// Print renders the cascade study.
func (c CascadeStudy) Print(w io.Writer) {
	fmt.Fprintf(w, "Cascade study (%d shards, store %s)\n", len(c.Shards), c.StoreDir)
	fmt.Fprintf(w, "  %-9s %7s %9s %11s %8s %10s %12s\n",
		"pass", "files", "bypassed", "store-hits", "deduped", "full-scans", "duration")
	row := func(name string, s CascadeShard) {
		fmt.Fprintf(w, "  %-9s %7d %9d %11d %8d %10d %12s\n",
			name, s.Files, s.Bypassed, s.StoreHits, s.Deduped, s.FullScans(),
			s.Duration.Round(time.Millisecond))
	}
	total := CascadeShard{}
	for _, s := range c.Shards {
		row(fmt.Sprintf("shard %d", s.Shard), s)
		total.Files += s.Files
		total.Bypassed += s.Bypassed
		total.StoreHits += s.StoreHits
		total.Deduped += s.Deduped
		total.Duration += s.Duration
	}
	row("crawl", total)
	row("re-crawl", c.Recrawl)
	if c.Recrawl.Files > 0 {
		avoided := c.Recrawl.Files - c.Recrawl.FullScans()
		fmt.Fprintf(w, "  re-crawl answered without the pipeline: %.2f%%\n",
			100*float64(avoided)/float64(c.Recrawl.Files))
	}
	fmt.Fprintf(w, "  store: %d entries, %d recovered, %d bytes dropped\n",
		c.Store.Entries, c.Store.Recovered, c.Store.DroppedBytes)
}
