package study

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ml"
	"repro/internal/transform"
)

// ---------------------------------------------------------------------------
// Section III-E1 — Test set 1 (held-out single-technique samples)
// ---------------------------------------------------------------------------

// Level1Accuracy reports the level 1 detector's per-class accuracy on
// held-out data (paper: 98.65% regular, 99.81% obfuscated, 99.71% minified,
// 99.41% overall).
type Level1Accuracy struct {
	Regular     float64
	Minified    float64
	Obfuscated  float64
	Overall     float64
	Transformed float64 // accuracy of the binary transformed-vs-regular view
	N           int
}

// RunLevel1Accuracy evaluates level 1 on the held-out pools.
func (r *Runner) RunLevel1Accuracy() (Level1Accuracy, error) {
	var acc Level1Accuracy

	regular := r.Trained.TestRegular
	regResults := r.classifyAll(regular)
	regOK := 0
	for _, res := range regResults {
		if res.err != nil {
			return acc, res.err
		}
		if !res.level1.IsTransformed() {
			regOK++
		}
	}

	var minified, obfuscated []corpus.File
	minified = append(minified, r.Trained.TestPool[transform.MinifySimple]...)
	minified = append(minified, r.Trained.TestPool[transform.MinifyAdvanced]...)
	for _, t := range transform.Techniques {
		if !t.IsMinification() {
			obfuscated = append(obfuscated, r.Trained.TestPool[t]...)
		}
	}

	minResults := r.classifyAll(minified)
	minOK := 0
	for _, res := range minResults {
		if res.err != nil {
			return acc, res.err
		}
		if res.level1.IsMinified() {
			minOK++
		}
	}

	obfResults := r.classifyAll(obfuscated)
	obfOK, obfTransformedOK := 0, 0
	for _, res := range obfResults {
		if res.err != nil {
			return acc, res.err
		}
		if res.level1.IsObfuscated() {
			obfOK++
		}
		if res.level1.IsTransformed() {
			obfTransformedOK++
		}
	}

	minTransformedOK := 0
	for _, res := range minResults {
		if res.level1.IsTransformed() {
			minTransformedOK++
		}
	}

	acc.N = len(regular) + len(minified) + len(obfuscated)
	acc.Regular = ratio(regOK, len(regular))
	acc.Minified = ratio(minOK, len(minified))
	acc.Obfuscated = ratio(obfOK, len(obfuscated))
	acc.Overall = ratio(regOK+minOK+obfOK, acc.N)
	acc.Transformed = ratio(regOK+minTransformedOK+obfTransformedOK, acc.N)
	return acc, nil
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Print renders the table.
func (a Level1Accuracy) Print(w io.Writer) {
	fmt.Fprintf(w, "Level 1 accuracy (test set 1, n=%d)\n", a.N)
	fmt.Fprintf(w, "  regular     %6.2f%%   (paper: 98.65%%)\n", a.Regular*100)
	fmt.Fprintf(w, "  minified    %6.2f%%   (paper: 99.71%%)\n", a.Minified*100)
	fmt.Fprintf(w, "  obfuscated  %6.2f%%   (paper: 99.81%%)\n", a.Obfuscated*100)
	fmt.Fprintf(w, "  overall     %6.2f%%   (paper: 99.41%%)\n", a.Overall*100)
	fmt.Fprintf(w, "  transformed %6.2f%%   (paper: 99.69%%)\n", a.Transformed*100)
}

// ---------------------------------------------------------------------------
// Section III-E1 — Level 2 exact-match and Top-k
// ---------------------------------------------------------------------------

// Level2Accuracy reports the level 2 detector's exact-match and Top-k
// accuracy on held-out single-technique samples (paper: 86.95% exact,
// Top-1 99.63%, Top-2 ~90.85%, Top-3 ~98.95%).
type Level2Accuracy struct {
	ExactMatch float64
	TopK       map[int]float64
	N          int
}

// RunLevel2Accuracy evaluates level 2 on the held-out pools.
func (r *Runner) RunLevel2Accuracy() (Level2Accuracy, error) {
	acc := Level2Accuracy{TopK: make(map[int]float64)}
	var files []corpus.File
	for _, t := range transform.Techniques {
		files = append(files, r.Trained.TestPool[t]...)
	}
	results := r.classifyAllLevel2(files)
	exact := 0
	topkOK := make(map[int]int)
	for i := range results {
		if results[i].err != nil {
			return acc, results[i].err
		}
		truth := core.Level2LabelRow(&files[i])
		probs := level2ProbRow(results[i].level2)
		pred := ml.ThresholdLabels(probs, 0.5)
		if ml.ExactMatch(pred, truth) {
			exact++
		}
		maxLabels := countTrue(truth)
		for k := 1; k <= maxLabels; k++ {
			if ml.TopKCorrect(probs, truth, k) {
				topkOK[k]++
			}
		}
	}
	acc.N = len(files)
	acc.ExactMatch = ratio(exact, len(files))
	// Top-k accuracy is measured over files whose ground truth has ≥ k
	// labels (beyond that the paper's metric is trivially 0).
	counts := make(map[int]int)
	for i := range files {
		maxLabels := countTrue(core.Level2LabelRow(&files[i]))
		for k := 1; k <= maxLabels; k++ {
			counts[k]++
		}
	}
	for k, ok := range topkOK {
		acc.TopK[k] = ratio(ok, counts[k])
	}
	return acc, nil
}

// classifyAllLevel2 runs level 2 unconditionally (evaluation of the level 2
// detector alone).
func (r *Runner) classifyAllLevel2(files []corpus.File) []fileProbs {
	out := make([]fileProbs, len(files))
	parallelFor(len(files), func(i int) {
		l2, err := r.Trained.Level2.ClassifyLevel2(files[i].Source)
		out[i] = fileProbs{file: &files[i], level2: l2, err: err}
	})
	return out
}

func level2ProbRow(res core.Level2Result) []float64 {
	probs := make([]float64, len(transform.Techniques))
	for _, p := range res.Ranked {
		for i, t := range transform.Techniques {
			if p.Technique == t {
				probs[i] = p.Probability
			}
		}
	}
	return probs
}

func countTrue(row []bool) int {
	n := 0
	for _, b := range row {
		if b {
			n++
		}
	}
	return n
}

// Print renders the table.
func (a Level2Accuracy) Print(w io.Writer) {
	fmt.Fprintf(w, "Level 2 accuracy (test set 1, n=%d)\n", a.N)
	fmt.Fprintf(w, "  exact match %6.2f%%  (paper: 86.95%%)\n", a.ExactMatch*100)
	for k := 1; k <= 3; k++ {
		if v, ok := a.TopK[k]; ok {
			fmt.Fprintf(w, "  top-%d       %6.2f%%\n", k, v*100)
		}
	}
}

// ---------------------------------------------------------------------------
// Section III-E2 — Figure 1 (mixed samples)
// ---------------------------------------------------------------------------

// Figure1Point is one k on the Figure 1 curves.
type Figure1Point struct {
	K          int
	Accuracy   float64
	AvgWrong   float64
	AvgMissing float64
}

// Figure1 holds the three panels of Figure 1.
type Figure1 struct {
	// PlainTopK is panel (a): Top-k with exactly k labels output.
	PlainTopK []Figure1Point
	// Threshold10 is panel (b): Top-k with the 10% confidence floor.
	Threshold10 []Figure1Point
	// DetectableAtThreshold is panel (c): how many techniques remain
	// predictable as the threshold grows.
	DetectableAtThreshold map[int]float64 // threshold percent → avg labels output
	// Level1TransformedAccuracy is the level 1 rate on the mixed files
	// (paper: 99.99%).
	Level1TransformedAccuracy float64
	N                         int
}

// RunFigure1 generates the mixed test set and evaluates both panels.
func (r *Runner) RunFigure1(n int) (Figure1, error) {
	fig := Figure1{DetectableAtThreshold: make(map[int]float64)}
	files, err := r.Trained.MixedTestSet(n, r.rng(101))
	if err != nil {
		return fig, err
	}
	fig.N = len(files)

	// Level 1 on mixed files.
	l1Results := r.classifyAll(files)
	transformedOK := 0
	for _, res := range l1Results {
		if res.err != nil {
			return fig, res.err
		}
		if res.level1.IsTransformed() {
			transformedOK++
		}
	}
	fig.Level1TransformedAccuracy = ratio(transformedOK, len(files))

	// Level 2 curves.
	l2Results := r.classifyAllLevel2(files)
	maxK := 8
	for k := 1; k <= maxK; k++ {
		var plain, thresh Figure1Point
		plain.K, thresh.K = k, k
		plainOK, threshOK := 0, 0
		for i := range l2Results {
			truth := core.Level2LabelRow(&files[i])
			probs := level2ProbRow(l2Results[i].level2)

			predPlain := ml.TopK(probs, k)
			if allInTruth(predPlain, truth) {
				plainOK++
			}
			w, m := ml.WrongMissing(predPlain, truth)
			plain.AvgWrong += float64(w)
			plain.AvgMissing += float64(m)

			predThresh := ml.TopKThreshold(probs, k, core.DefaultThreshold)
			if allInTruth(predThresh, truth) {
				threshOK++
			}
			w, m = ml.WrongMissing(predThresh, truth)
			thresh.AvgWrong += float64(w)
			thresh.AvgMissing += float64(m)
		}
		nf := float64(len(files))
		plain.Accuracy = ratio(plainOK, len(files))
		plain.AvgWrong /= nf
		plain.AvgMissing /= nf
		thresh.Accuracy = ratio(threshOK, len(files))
		thresh.AvgWrong /= nf
		thresh.AvgMissing /= nf
		fig.PlainTopK = append(fig.PlainTopK, plain)
		fig.Threshold10 = append(fig.Threshold10, thresh)
	}

	// Panel (c): average number of labels that survive each threshold.
	for _, pct := range []int{5, 10, 20, 30, 40, 50, 60, 70} {
		sum := 0.0
		for i := range l2Results {
			probs := level2ProbRow(l2Results[i].level2)
			sum += float64(len(ml.ThresholdLabels(probs, float64(pct)/100)))
		}
		fig.DetectableAtThreshold[pct] = sum / float64(len(files))
	}
	return fig, nil
}

// allInTruth reports whether every predicted label is part of the ground
// truth (the paper's Top-k correctness on mixed samples).
func allInTruth(pred []int, truth []bool) bool {
	for _, i := range pred {
		if !truth[i] {
			return false
		}
	}
	return true
}

// Print renders the three panels.
func (f Figure1) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 1 (mixed samples, n=%d; level 1 transformed %.2f%%, paper: 99.99%%)\n",
		f.N, f.Level1TransformedAccuracy*100)
	fmt.Fprintf(w, "  (a) plain top-k:      k  acc%%   wrong  missing\n")
	for _, p := range f.PlainTopK {
		fmt.Fprintf(w, "      %22d  %5.1f  %5.2f  %5.2f\n", p.K, p.Accuracy*100, p.AvgWrong, p.AvgMissing)
	}
	fmt.Fprintf(w, "  (b) top-k, 10%% floor: k  acc%%   wrong  missing\n")
	for _, p := range f.Threshold10 {
		fmt.Fprintf(w, "      %22d  %5.1f  %5.2f  %5.2f\n", p.K, p.Accuracy*100, p.AvgWrong, p.AvgMissing)
	}
	fmt.Fprintf(w, "  (c) avg labels above threshold:\n")
	for _, pct := range []int{5, 10, 20, 30, 40, 50, 60, 70} {
		fmt.Fprintf(w, "      %3d%%  %5.2f\n", pct, f.DetectableAtThreshold[pct])
	}
}

// ---------------------------------------------------------------------------
// Section III-E3 — Test set 3 (held-out packer)
// ---------------------------------------------------------------------------

// PackerResult is the generalization experiment: samples transformed by a
// tool absent from training.
type PackerResult struct {
	// TransformedRate is the fraction level 1 flags (paper: 99.52%).
	TransformedRate float64
	// TopTechniques is the technique set the 10%-floor Top-4 reports most
	// often (paper: minification advanced and simple, identifier
	// obfuscation, string obfuscation).
	TopTechniques []transform.Technique
	// TechniqueRate maps each technique to how often it appears in the
	// Top-4 report.
	TechniqueRate map[transform.Technique]float64
	N             int
}

// RunPacker evaluates the held-out packer samples.
func (r *Runner) RunPacker(n int) (PackerResult, error) {
	res := PackerResult{TechniqueRate: make(map[transform.Technique]float64)}
	files, err := r.Trained.PackerTestSet(n, r.rng(202))
	if err != nil {
		return res, err
	}
	res.N = len(files)
	l1 := r.classifyAll(files)
	transformed := 0
	counts := make(map[transform.Technique]int)
	for _, fp := range l1 {
		if fp.err != nil {
			return res, fp.err
		}
		if !fp.level1.IsTransformed() {
			continue
		}
		transformed++
		for _, p := range fp.level2.TopK(4, core.DefaultThreshold) {
			counts[p.Technique]++
		}
	}
	res.TransformedRate = ratio(transformed, len(files))
	for t, c := range counts {
		res.TechniqueRate[t] = ratio(c, transformed)
	}
	for _, t := range transform.Techniques {
		if res.TechniqueRate[t] >= 0.3 {
			res.TopTechniques = append(res.TopTechniques, t)
		}
	}
	return res, nil
}

// Print renders the experiment summary.
func (p PackerResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Test set 3: Dean Edwards-style packer, never seen in training (n=%d)\n", p.N)
	fmt.Fprintf(w, "  flagged transformed %6.2f%%  (paper: 99.52%%)\n", p.TransformedRate*100)
	fmt.Fprintf(w, "  techniques reported by top-4 @ 10%% floor:\n")
	for _, t := range transform.Techniques {
		if rate, ok := p.TechniqueRate[t]; ok && rate > 0 {
			fmt.Fprintf(w, "    %-26s %6.2f%%\n", t, rate*100)
		}
	}
}

// ---------------------------------------------------------------------------
// Validation ablation — chain vs independent (Section III-D3)
// ---------------------------------------------------------------------------

// ChainAblation compares the classifier-chain and independence-assumption
// arrangements on the same training data.
type ChainAblation struct {
	ChainExact       float64
	IndependentExact float64
	N                int
}

// RunChainAblation trains level 2 twice on the same data — once as a
// classifier chain, once with the independence assumption — and compares
// exact-match accuracy on a held-out half (the Section III-D3 validation).
func (r *Runner) RunChainAblation() (ChainAblation, error) {
	var out ChainAblation

	var l2Files []corpus.File
	for _, t := range transform.Techniques {
		l2Files = append(l2Files, r.Trained.TestPool[t]...)
	}
	// Shuffle so both halves cover every technique, then split.
	rng := r.rng(901)
	rng.Shuffle(len(l2Files), func(i, j int) { l2Files[i], l2Files[j] = l2Files[j], l2Files[i] })
	half := len(l2Files) / 2
	trainHalf, testHalf := l2Files[:half], l2Files[half:]

	indepOpts := r.cfg.detectorOptions()
	indepOpts.Independent = true
	indep, err := core.TrainLevel2(trainHalf, indepOpts)
	if err != nil {
		return out, err
	}
	chain, err := core.TrainLevel2(trainHalf, r.cfg.detectorOptions())
	if err != nil {
		return out, err
	}

	exactOf := func(d *core.Detector) (float64, error) {
		exact := 0
		for i := range testHalf {
			res, err := d.ClassifyLevel2(testHalf[i].Source)
			if err != nil {
				return 0, err
			}
			truth := core.Level2LabelRow(&testHalf[i])
			pred := ml.ThresholdLabels(level2ProbRow(res), 0.5)
			if ml.ExactMatch(pred, truth) {
				exact++
			}
		}
		return ratio(exact, len(testHalf)), nil
	}
	out.ChainExact, err = exactOf(chain)
	if err != nil {
		return out, err
	}
	out.IndependentExact, err = exactOf(indep)
	if err != nil {
		return out, err
	}
	out.N = len(testHalf)
	return out, nil
}

// Print renders the ablation.
func (c ChainAblation) Print(w io.Writer) {
	fmt.Fprintf(w, "Multi-task arrangement ablation (n=%d)\n", c.N)
	fmt.Fprintf(w, "  classifier chain     exact %6.2f%%\n", c.ChainExact*100)
	fmt.Fprintf(w, "  independence assum.  exact %6.2f%%\n", c.IndependentExact*100)
	fmt.Fprintf(w, "  (paper: the chain performed best for both levels)\n")
}

// parallelFor runs f(i) for i in [0,n) on all cores.
func parallelFor(n int, f func(int)) {
	var wg sync.WaitGroup
	next := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// ---------------------------------------------------------------------------
// Section V-A — unmonitored technique (obfuscated field reference)
// ---------------------------------------------------------------------------

// UnmonitoredResult is the Section V-A claim quantified: files transformed
// with a technique level 2 has no class for (obfuscated field reference)
// must still be flagged as transformed by level 1.
type UnmonitoredResult struct {
	TransformedRate float64
	N               int
}

// RunUnmonitored transforms held-out bases with the unmonitored
// field-reference technique and measures level 1 recall.
func (r *Runner) RunUnmonitored(n int) (UnmonitoredResult, error) {
	var res UnmonitoredResult
	rng := r.rng(911)
	bases := r.Trained.TestBases
	if len(bases) == 0 {
		return res, fmt.Errorf("no held-out bases")
	}
	files := make([]corpus.File, 0, n)
	for i := 0; i < n; i++ {
		f, err := corpus.Apply(bases[rng.Intn(len(bases))], rng, transform.FieldReference)
		if err != nil {
			return res, err
		}
		files = append(files, f)
	}
	results := r.classifyAll(files)
	transformed := 0
	for _, fp := range results {
		if fp.err != nil {
			return res, fp.err
		}
		if fp.level1.IsTransformed() {
			transformed++
		}
	}
	res.N = len(files)
	res.TransformedRate = ratio(transformed, len(files))
	return res, nil
}

// Print renders the experiment.
func (u UnmonitoredResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Unmonitored technique: obfuscated field reference (n=%d)\n", u.N)
	fmt.Fprintf(w, "  flagged transformed %6.2f%% (level 2 has no class for it;\n", u.TransformedRate*100)
	fmt.Fprintf(w, "  the paper's Section V-A claims level 1 still catches such files)\n")
}
