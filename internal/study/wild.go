package study

import (
	"fmt"
	"io"

	"repro/internal/corpus"
	"repro/internal/transform"
)

// ---------------------------------------------------------------------------
// Table I — dataset inventory
// ---------------------------------------------------------------------------

// TableIRow is one dataset of the study.
type TableIRow struct {
	Source   string
	Creation string
	NumJS    int
	Class    string
	Section  string
}

// TableI summarizes the generated datasets at the configured scale.
type TableI struct {
	Rows []TableIRow
}

// RunTableI generates every collection and counts it, mirroring Table I.
func (r *Runner) RunTableI() (TableI, error) {
	scale := r.cfg.scale()
	var t TableI

	alexa, err := corpus.BuildRanked(corpus.AlexaConfig(40*scale), r.rng(301))
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, TableIRow{"Alexa Top 10k (scaled)", "2020", len(alexa), "Benign", "IV-B1"})

	npm, err := corpus.BuildNpm(corpus.NpmConfig(40*scale), r.rng(302))
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, TableIRow{"npm Top 10k (scaled)", "2020", len(npm), "Benign", "IV-B2"})

	for _, cfg := range corpus.DefaultMaliciousConfigs(scale) {
		files, err := corpus.BuildMalicious(cfg, r.rng(303+int64(len(t.Rows))))
		if err != nil {
			return t, err
		}
		created := "2015-2017"
		if cfg.Source == "bsi" {
			created = "2017"
		}
		t.Rows = append(t.Rows, TableIRow{cfg.Source, created, len(files), "Malicious", "IV-C"})
	}

	alexaLong, err := corpus.BuildLongitudinal(corpus.LongitudinalConfig{
		ScriptsPerMonth: 4 * scale, Origin: "alexa",
	}, r.rng(310))
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, TableIRow{"Alexa Top 2k x 65 (scaled)", "2015-2020", len(alexaLong), "Benign", "IV-D1"})

	npmLong, err := corpus.BuildLongitudinal(corpus.LongitudinalConfig{
		ScriptsPerMonth: 4 * scale, Origin: "npm",
	}, r.rng(311))
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, TableIRow{"npm Top 2k x 65 (scaled)", "2015-2020", len(npmLong), "Benign", "IV-D2"})
	return t, nil
}

// Print renders Table I.
func (t TableI) Print(w io.Writer) {
	fmt.Fprintf(w, "Table I: datasets (scaled)\n")
	fmt.Fprintf(w, "  %-28s %-10s %8s  %-9s %s\n", "Source", "Creation", "#JS", "Class", "Section")
	for _, row := range t.Rows {
		fmt.Fprintf(w, "  %-28s %-10s %8d  %-9s %s\n", row.Source, row.Creation, row.NumJS, row.Class, row.Section)
	}
}

// ---------------------------------------------------------------------------
// Section IV-B1 — Alexa-like study (Figure 2 + rank groups)
// ---------------------------------------------------------------------------

// WildStudy captures the level 1 / level 2 findings on one benign ranked
// collection.
type WildStudy struct {
	Origin string
	// ScriptTransformedRate is the fraction of scripts flagged transformed
	// (paper: 68.60% Alexa, 8.7% npm).
	ScriptTransformedRate float64
	// MinifiedRate and ObfuscatedRate break the transformed scripts down
	// (paper Alexa: 68.20% / 0.40%).
	MinifiedRate   float64
	ObfuscatedRate float64
	// UnitRate is the fraction of sites/packages with at least one
	// transformed script (paper: 89.4% Alexa, 15.14% npm).
	UnitRate float64
	// TechniqueAvg is the Figure 2/3 series: average level 2 confidence per
	// technique over transformed scripts.
	TechniqueAvg map[transform.Technique]float64
	// RankGroups maps each rank decile (0-based) to its transformed rate
	// (Figure 4 and the Alexa rank analysis).
	RankGroups []float64
	// PlantedRate is the ground-truth transformed fraction, for
	// verification against the detector's measurement.
	PlantedRate float64
	NumScripts  int
	NumUnits    int
}

// runWild evaluates one ranked benign collection.
func (r *Runner) runWild(files []corpus.File, origin string, units int) (WildStudy, error) {
	st := WildStudy{Origin: origin, NumScripts: len(files), NumUnits: units}
	results := r.classifyAll(files)

	transformed, minified, obfuscated, planted := 0, 0, 0, 0
	unitHasTransformed := make(map[int]bool)
	groupTransformed := make([]int, 10)
	groupTotal := make([]int, 10)
	for _, res := range results {
		if res.err != nil {
			return st, res.err
		}
		if res.file.Transformed() {
			planted++
		}
		group := (res.file.Rank - 1) * 10 / max(units, 1)
		if group > 9 {
			group = 9
		}
		groupTotal[group]++
		if res.level1.IsTransformed() {
			transformed++
			unitHasTransformed[res.file.Rank] = true
			groupTransformed[group]++
		}
		if res.level1.IsMinified() {
			minified++
		}
		if res.level1.IsObfuscated() {
			obfuscated++
		}
	}
	st.ScriptTransformedRate = ratio(transformed, len(files))
	st.MinifiedRate = ratio(minified, len(files))
	st.ObfuscatedRate = ratio(obfuscated, len(files))
	st.UnitRate = ratio(len(unitHasTransformed), units)
	st.PlantedRate = ratio(planted, len(files))
	st.TechniqueAvg = techniqueAverages(results)
	st.RankGroups = make([]float64, 10)
	for g := 0; g < 10; g++ {
		st.RankGroups[g] = ratio(groupTransformed[g], groupTotal[g])
	}
	return st, nil
}

// RunAlexa builds and evaluates the Alexa-like collection (Section IV-B1,
// Figure 2).
func (r *Runner) RunAlexa() (WildStudy, error) {
	units := 40 * r.cfg.scale()
	files, err := corpus.BuildRanked(corpus.AlexaConfig(units), r.rng(401))
	if err != nil {
		return WildStudy{}, err
	}
	return r.runWild(files, "alexa", units)
}

// RunNpm builds and evaluates the npm-like collection (Section IV-B2,
// Figures 3 and 4).
func (r *Runner) RunNpm() (WildStudy, error) {
	units := 40 * r.cfg.scale()
	files, err := corpus.BuildNpm(corpus.NpmConfig(units), r.rng(402))
	if err != nil {
		return WildStudy{}, err
	}
	return r.runWild(files, "npm", units)
}

// Print renders the study.
func (s WildStudy) Print(w io.Writer) {
	fmt.Fprintf(w, "%s study (%d scripts, %d units)\n", s.Origin, s.NumScripts, s.NumUnits)
	fmt.Fprintf(w, "  scripts transformed %6.2f%% (planted %.2f%%)\n", s.ScriptTransformedRate*100, s.PlantedRate*100)
	fmt.Fprintf(w, "    minified   %6.2f%%\n", s.MinifiedRate*100)
	fmt.Fprintf(w, "    obfuscated %6.2f%%\n", s.ObfuscatedRate*100)
	fmt.Fprintf(w, "  units with ≥1 transformed script %6.2f%%\n", s.UnitRate*100)
	printTechniqueTable(w, "  technique usage probability:", s.TechniqueAvg)
	fmt.Fprintf(w, "  transformed rate by rank decile:")
	for _, g := range s.RankGroups {
		fmt.Fprintf(w, " %5.1f", g*100)
	}
	fmt.Fprintln(w)
}

// ---------------------------------------------------------------------------
// Section IV-C — malicious collections (Figure 5)
// ---------------------------------------------------------------------------

// MaliciousStudy captures one feed's results.
type MaliciousStudy struct {
	Source string
	// TransformedRate is the level 1 rate (paper: 65.94% DNC, 73.07%
	// Hynek, 28.93% BSI).
	TransformedRate float64
	PlantedRate     float64
	// TechniqueAvg is the Figure 5 series.
	TechniqueAvg map[transform.Technique]float64
	// MonthlyTransformed maps month index → transformed rate, showing the
	// per-month variation the paper describes.
	MonthlyTransformed map[int]float64
	N                  int
}

// RunMalicious evaluates all three feeds.
func (r *Runner) RunMalicious() ([]MaliciousStudy, error) {
	var out []MaliciousStudy
	for i, cfg := range corpus.DefaultMaliciousConfigs(r.cfg.scale()) {
		files, err := corpus.BuildMalicious(cfg, r.rng(501+int64(i)))
		if err != nil {
			return nil, err
		}
		results := r.classifyAll(files)
		st := MaliciousStudy{
			Source:             cfg.Source,
			N:                  len(files),
			MonthlyTransformed: make(map[int]float64),
		}
		transformed, planted := 0, 0
		monthT := make(map[int]int)
		monthN := make(map[int]int)
		for _, res := range results {
			if res.err != nil {
				return nil, res.err
			}
			monthN[res.file.Month]++
			if res.file.Transformed() {
				planted++
			}
			if res.level1.IsTransformed() {
				transformed++
				monthT[res.file.Month]++
			}
		}
		st.TransformedRate = ratio(transformed, len(files))
		st.PlantedRate = ratio(planted, len(files))
		for m, n := range monthN {
			st.MonthlyTransformed[m] = ratio(monthT[m], n)
		}
		st.TechniqueAvg = techniqueAverages(results)
		out = append(out, st)
	}
	return out, nil
}

// PrintMalicious renders the feeds side by side.
func PrintMalicious(w io.Writer, studies []MaliciousStudy) {
	for _, s := range studies {
		fmt.Fprintf(w, "malicious %s (n=%d)\n", s.Source, s.N)
		fmt.Fprintf(w, "  transformed %6.2f%% (planted %.2f%%)\n", s.TransformedRate*100, s.PlantedRate*100)
		printTechniqueTable(w, "  technique usage probability (Figure 5):", s.TechniqueAvg)
	}
}

// ---------------------------------------------------------------------------
// Section IV-D — longitudinal study (Figures 6-8)
// ---------------------------------------------------------------------------

// MonthPoint is one month on the Figures 6-8 series.
type MonthPoint struct {
	Month           int
	Label           string
	TransformedRate float64
	PlantedRate     float64
	TechniqueAvg    map[transform.Technique]float64
}

// Longitudinal is one origin's 65-month series.
type Longitudinal struct {
	Origin string
	Points []MonthPoint
}

// RunLongitudinal evaluates one origin over the 65 months.
func (r *Runner) RunLongitudinal(origin string) (Longitudinal, error) {
	long := Longitudinal{Origin: origin}
	files, err := corpus.BuildLongitudinal(corpus.LongitudinalConfig{
		ScriptsPerMonth: 4 * r.cfg.scale(),
		Origin:          origin,
	}, r.rng(601))
	if err != nil {
		return long, err
	}
	results := r.classifyAll(files)

	byMonth := make(map[int][]fileProbs)
	for _, res := range results {
		if res.err != nil {
			return long, res.err
		}
		byMonth[res.file.Month] = append(byMonth[res.file.Month], res)
	}
	for m := 0; m < corpus.LongitudinalMonths; m++ {
		monthResults := byMonth[m]
		transformed, planted := 0, 0
		for _, res := range monthResults {
			if res.level1.IsTransformed() {
				transformed++
			}
			if res.file.Transformed() {
				planted++
			}
		}
		long.Points = append(long.Points, MonthPoint{
			Month:           m,
			Label:           corpus.MonthLabel(m),
			TransformedRate: ratio(transformed, len(monthResults)),
			PlantedRate:     ratio(planted, len(monthResults)),
			TechniqueAvg:    techniqueAverages(monthResults),
		})
	}
	return long, nil
}

// Print renders the series (Figure 6 column plus the Figure 7/8 technique
// columns for the leading techniques).
func (l Longitudinal) Print(w io.Writer) {
	fmt.Fprintf(w, "longitudinal %s (Figures 6-8)\n", l.Origin)
	fmt.Fprintf(w, "  month    transformed%%  min.simple%%  min.adv%%  ident.obf%%\n")
	for _, p := range l.Points {
		fmt.Fprintf(w, "  %s   %10.1f  %10.1f  %8.1f  %9.1f\n",
			p.Label, p.TransformedRate*100,
			p.TechniqueAvg[transform.MinifySimple]*100,
			p.TechniqueAvg[transform.MinifyAdvanced]*100,
			p.TechniqueAvg[transform.IdentifierObfuscation]*100)
	}
}

// HalfMeans returns the mean transformed rate of the first and second half
// of the series — the benchmark's trend check for Figure 6.
func (l Longitudinal) HalfMeans() (first, second float64) {
	half := len(l.Points) / 2
	for i, p := range l.Points {
		if i < half {
			first += p.TransformedRate
		} else {
			second += p.TransformedRate
		}
	}
	if half > 0 {
		first /= float64(half)
		second /= float64(len(l.Points) - half)
	}
	return first, second
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
