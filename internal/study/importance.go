package study

import (
	"fmt"
	"io"

	"repro/internal/corpus"
	"repro/internal/ml"
	"repro/internal/transform"
)

// FeatureRanking interprets one level 1 class: the features whose
// permutation hurts that class's binary classifier the most.
type FeatureRanking struct {
	Class    string
	Features []NamedImportance
}

// NamedImportance is one ranked feature.
type NamedImportance struct {
	Name string
	Drop float64
}

// RunFeatureImportance computes permutation importance for the level 1
// chain classifiers over held-out data, mapping dimensions back to feature
// names (hashed n-gram buckets keep their bucket names; the interesting
// entries are usually the hand-picked features of Section III-B).
func (r *Runner) RunFeatureImportance(topN int) ([]FeatureRanking, error) {
	chain, ok := r.Trained.Level1.ChainModel()
	if !ok {
		return nil, fmt.Errorf("level 1 detector is not a classifier chain")
	}

	// Evaluation set: held-out regular + one pool per class.
	var files []corpus.File
	files = append(files, r.Trained.TestRegular...)
	files = append(files, r.Trained.TestPool[transform.MinifySimple]...)
	files = append(files, r.Trained.TestPool[transform.IdentifierObfuscation]...)
	files = append(files, r.Trained.TestPool[transform.ControlFlowFlattening]...)

	ext := r.Trained.Level1.Extractor()
	x := make([][]float64, len(files))
	errs := make([]error, len(files))
	parallelFor(len(files), func(i int) {
		vec, err := ext.Extract(files[i].Source)
		x[i], errs[i] = vec, err
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	names := ext.Names()
	for _, label := range chain.Names {
		names = append(names, "chain:"+label)
	}

	var out []FeatureRanking
	// The chain feeds each classifier the previous predictions; rebuild the
	// extended matrix link by link, exactly as Chain.PredictProbs does.
	extended := make([][]float64, len(x))
	for i := range x {
		extended[i] = append([]float64(nil), x[i]...)
	}
	classLabel := func(j int, f *corpus.File) bool {
		switch chain.Names[j] {
		case "regular":
			return !f.Transformed()
		case "minified":
			return f.Minified()
		default:
			return f.Obfuscated()
		}
	}
	for j, forest := range chain.Forests {
		y := make([]bool, len(files))
		for i := range files {
			y[i] = classLabel(j, &files[i])
		}
		imp := ml.PermutationImportance(forest, extended, y, topN, r.rng(800+int64(j)))
		ranking := FeatureRanking{Class: chain.Names[j]}
		for _, fi := range imp {
			ranking.Features = append(ranking.Features, NamedImportance{
				Name: names[fi.Feature],
				Drop: fi.Drop,
			})
		}
		out = append(out, ranking)
		for i := range extended {
			extended[i] = append(extended[i], forest.Predict(extended[i]))
		}
	}
	return out, nil
}

// PrintFeatureImportance renders the interpretability table.
func PrintFeatureImportance(w io.Writer, rankings []FeatureRanking) {
	fmt.Fprintf(w, "Level 1 permutation feature importance (held-out data)\n")
	for _, r := range rankings {
		fmt.Fprintf(w, "  class %q:\n", r.Class)
		for _, f := range r.Features {
			fmt.Fprintf(w, "    %-32s %.4f\n", f.Name, f.Drop)
		}
	}
}
