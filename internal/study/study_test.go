package study

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/transform"
)

var (
	testRunnerOnce sync.Once
	testRunner     *Runner
	testRunnerErr  error
)

// getRunner trains one small shared runner for the whole package.
func getRunner(t *testing.T) *Runner {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping study experiments in -short mode")
	}
	testRunnerOnce.Do(func() {
		testRunner, testRunnerErr = NewRunner(Config{
			Seed:        3,
			BaseScripts: 90,
			NumTrees:    20,
			NGramDims:   512,
		})
	})
	if testRunnerErr != nil {
		t.Fatalf("train runner: %v", testRunnerErr)
	}
	return testRunner
}

func TestTableI(t *testing.T) {
	r := getRunner(t)
	tab, err := r.RunTableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("Table I rows = %d, want 7", len(tab.Rows))
	}
	var sb strings.Builder
	tab.Print(&sb)
	for _, want := range []string{"Alexa", "npm", "dnc", "hynek", "bsi"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("table missing %s:\n%s", want, sb.String())
		}
	}
}

func TestLevel1AccuracyExperiment(t *testing.T) {
	r := getRunner(t)
	acc, err := r.RunLevel1Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc.Regular < 0.85 {
		t.Fatalf("regular accuracy = %.3f", acc.Regular)
	}
	if acc.Minified < 0.9 {
		t.Fatalf("minified accuracy = %.3f", acc.Minified)
	}
	if acc.Overall < 0.8 {
		t.Fatalf("overall accuracy = %.3f", acc.Overall)
	}
}

func TestLevel2AccuracyExperiment(t *testing.T) {
	r := getRunner(t)
	acc, err := r.RunLevel2Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc.TopK[1] < 0.8 {
		t.Fatalf("top-1 = %.3f", acc.TopK[1])
	}
	if acc.ExactMatch < 0.6 {
		t.Fatalf("exact match = %.3f", acc.ExactMatch)
	}
}

func TestFigure1Experiment(t *testing.T) {
	r := getRunner(t)
	fig, err := r.RunFigure1(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.PlainTopK) != 8 || len(fig.Threshold10) != 8 {
		t.Fatalf("curve lengths %d/%d", len(fig.PlainTopK), len(fig.Threshold10))
	}
	// The confidence floor must not produce more wrong labels than the
	// plain top-k at high k (that is its purpose).
	if fig.Threshold10[7].AvgWrong > fig.PlainTopK[7].AvgWrong {
		t.Fatalf("thresholded wrong labels %.2f > plain %.2f",
			fig.Threshold10[7].AvgWrong, fig.PlainTopK[7].AvgWrong)
	}
	// Level 1 on mixed files should be near-perfect (paper: 99.99%).
	if fig.Level1TransformedAccuracy < 0.9 {
		t.Fatalf("level 1 on mixed = %.3f", fig.Level1TransformedAccuracy)
	}
	// Threshold panel: more labels survive 10% than 50%.
	if fig.DetectableAtThreshold[10] < fig.DetectableAtThreshold[50] {
		t.Fatal("threshold sweep not monotone")
	}
}

func TestPackerExperiment(t *testing.T) {
	r := getRunner(t)
	res, err := r.RunPacker(25)
	if err != nil {
		t.Fatal(err)
	}
	// The packer was never in training; level 1 must still catch most of it
	// (paper: 99.52%).
	if res.TransformedRate < 0.85 {
		t.Fatalf("packer transformed rate = %.3f", res.TransformedRate)
	}
	// Minification must be among the reported techniques (the packer
	// minifies aggressively).
	if res.TechniqueRate[transform.MinifySimple] == 0 && res.TechniqueRate[transform.MinifyAdvanced] == 0 {
		t.Fatalf("packer report lacks minification: %v", res.TechniqueRate)
	}
}

func TestAlexaExperiment(t *testing.T) {
	r := getRunner(t)
	st, err := r.RunAlexa()
	if err != nil {
		t.Fatal(err)
	}
	// Measured rate must track the planted rate within 10 points.
	if diff := st.ScriptTransformedRate - st.PlantedRate; diff < -0.1 || diff > 0.1 {
		t.Fatalf("measured %.3f vs planted %.3f", st.ScriptTransformedRate, st.PlantedRate)
	}
	// Minification dominates the technique profile (Figure 2).
	minTotal := st.TechniqueAvg[transform.MinifySimple] + st.TechniqueAvg[transform.MinifyAdvanced]
	if minTotal < 0.5 {
		t.Fatalf("minification share = %.3f", minTotal)
	}
	if st.TechniqueAvg[transform.IdentifierObfuscation] > 0.2 {
		t.Fatalf("identifier obfuscation too prominent for benign: %.3f",
			st.TechniqueAvg[transform.IdentifierObfuscation])
	}
}

func TestNpmExperiment(t *testing.T) {
	r := getRunner(t)
	st, err := r.RunNpm()
	if err != nil {
		t.Fatal(err)
	}
	// npm is far less transformed than Alexa (paper: 8.7% vs 68.60%).
	if st.ScriptTransformedRate > 0.3 {
		t.Fatalf("npm transformed rate = %.3f, expected low", st.ScriptTransformedRate)
	}
}

func TestMaliciousExperiment(t *testing.T) {
	r := getRunner(t)
	studies, err := r.RunMalicious()
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != 3 {
		t.Fatalf("feeds = %d", len(studies))
	}
	bySource := make(map[string]MaliciousStudy)
	for _, s := range studies {
		bySource[s.Source] = s
	}
	// BSI must be the least transformed (paper: 28.93% vs 65.94%/73.07%).
	if bySource["bsi"].TransformedRate >= bySource["hynek"].TransformedRate {
		t.Fatalf("bsi %.3f >= hynek %.3f",
			bySource["bsi"].TransformedRate, bySource["hynek"].TransformedRate)
	}
	// Identifier obfuscation leads the malicious mixture (Figure 5) and
	// far exceeds its benign share.
	for _, s := range studies {
		if s.TechniqueAvg[transform.IdentifierObfuscation] < 0.10 {
			t.Fatalf("%s identifier obfuscation = %.3f, expected prominent",
				s.Source, s.TechniqueAvg[transform.IdentifierObfuscation])
		}
	}
}

func TestLongitudinalExperiment(t *testing.T) {
	r := getRunner(t)
	long, err := r.RunLongitudinal("alexa")
	if err != nil {
		t.Fatal(err)
	}
	if len(long.Points) != 65 {
		t.Fatalf("months = %d", len(long.Points))
	}
	first, second := long.HalfMeans()
	if second <= first-0.05 {
		t.Fatalf("Alexa transformed rate must rise: first %.3f second %.3f", first, second)
	}
}

func TestChainAblationExperiment(t *testing.T) {
	r := getRunner(t)
	abl, err := r.RunChainAblation()
	if err != nil {
		t.Fatal(err)
	}
	if abl.ChainExact == 0 && abl.IndependentExact == 0 {
		t.Fatal("ablation produced no signal")
	}
}

func TestUnmonitoredTechniqueFlagged(t *testing.T) {
	r := getRunner(t)
	res, err := r.RunUnmonitored(30)
	if err != nil {
		t.Fatal(err)
	}
	// Level 2 has no class for field-reference obfuscation, but level 1
	// must still flag a clear majority (the files are saturated with
	// bracket accesses and string-concat property names).
	// At the package test's deliberately tiny training scale the recall is
	// ~0.4-0.6; the standard-scale run (cmd/study -experiment unmonitored,
	// BenchmarkUnmonitoredTechnique) reaches ~0.9.
	if res.TransformedRate < 0.35 {
		t.Fatalf("unmonitored technique flagged at %.3f, want >= 0.35", res.TransformedRate)
	}
}

func TestFeatureImportance(t *testing.T) {
	r := getRunner(t)
	rankings, err := r.RunFeatureImportance(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rankings) != 3 {
		t.Fatalf("rankings = %d, want one per level 1 class", len(rankings))
	}
	// The minified classifier's strongest signals should include at least
	// one whitespace/line-length style feature.
	found := false
	for _, f := range rankings[1].Features {
		switch f.Name {
		case "whitespace_ratio", "avg_chars_per_line", "newline_per_byte",
			"max_chars_per_line_capped", "comment_char_ratio", "avg_identifier_length",
			"short_identifier_ratio", "token_per_byte":
			found = true
		}
	}
	if !found && len(rankings[1].Features) > 0 {
		names := make([]string, 0, len(rankings[1].Features))
		for _, f := range rankings[1].Features {
			names = append(names, f.Name)
		}
		t.Logf("minified class top features: %v (no classic minification signal in top set)", names)
	}
}
