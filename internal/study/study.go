// Package study reruns the paper's experiments end to end: detector
// accuracy (Section III-E, Figure 1), the large-scale wild analysis of
// Alexa-like, npm-like, and malicious collections (Section IV, Figures 2-5),
// and the longitudinal analysis (Section IV-D, Figures 6-8). Each experiment
// returns a typed result and can render itself as the table/series the
// paper reports.
package study

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/transform"
)

// Config sizes a study run.
type Config struct {
	// Scale multiplies every corpus size; 1 is the quick laptop setting.
	Scale int
	// Seed drives all generation and training.
	Seed int64
	// NumTrees overrides the forest size; zero means 40.
	NumTrees int
	// NGramDims overrides the hashed n-gram space; zero means 1024.
	NGramDims int
	// BaseScripts overrides the number of base regular scripts; zero means
	// 150 per scale unit.
	BaseScripts int
}

func (c Config) scale() int {
	if c.Scale < 1 {
		return 1
	}
	return c.Scale
}

// Runner holds trained detectors plus the study configuration.
type Runner struct {
	Trained *core.Trained
	cfg     Config
}

// detectorOptions derives the detector options from the study config.
func (c Config) detectorOptions() core.Options {
	return core.Options{
		Features: features.Options{NGramDims: c.NGramDims},
		Forest: ml.ForestOptions{
			NumTrees: c.NumTrees,
			Parallel: true,
			Tree:     ml.TreeOptions{MTry: 128},
		},
		Seed: c.Seed,
	}
}

// NewRunner trains both detectors at the configured scale.
func NewRunner(cfg Config) (*Runner, error) {
	bases := cfg.BaseScripts
	if bases <= 0 {
		bases = 150 * cfg.scale()
	}
	trained, err := core.Train(core.TrainConfig{
		NumRegular: bases,
		Options:    cfg.detectorOptions(),
	})
	if err != nil {
		return nil, err
	}
	return &Runner{Trained: trained, cfg: cfg}, nil
}

// rng derives a fresh stream for one experiment so experiments are
// independent of each other's ordering.
func (r *Runner) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(r.cfg.Seed*1315423911 + offset))
}

// ---------------------------------------------------------------------------
// Batch classification
// ---------------------------------------------------------------------------

// fileProbs carries both detector outputs for one file.
type fileProbs struct {
	file   *corpus.File
	level1 core.Level1Result
	level2 core.Level2Result
	err    error
}

// classifyAll runs level 1 (and level 2 for files level 1 reports as
// transformed) over all files with a worker pool.
func (r *Runner) classifyAll(files []corpus.File) []fileProbs {
	out := make([]fileProbs, len(files))
	var wg sync.WaitGroup
	next := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f := &files[i]
				res := fileProbs{file: f}
				l1, err := r.Trained.Level1.ClassifyLevel1(f.Source)
				if err != nil {
					res.err = err
					out[i] = res
					continue
				}
				res.level1 = l1
				if l1.IsTransformed() {
					l2, err := r.Trained.Level2.ClassifyLevel2(f.Source)
					if err != nil {
						res.err = err
						out[i] = res
						continue
					}
					res.level2 = l2
				}
				out[i] = res
			}
		}()
	}
	for i := range files {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// techniqueAverages computes, over the files level 1 flagged as
// transformed, the average level 2 confidence per technique — the metric
// behind Figures 2, 3, 5, 7, and 8 ("the average probability of a given
// technique being used, based on our detector confidence score").
func techniqueAverages(results []fileProbs) map[transform.Technique]float64 {
	sums := make(map[transform.Technique]float64)
	n := 0
	for _, res := range results {
		if res.err != nil || !res.level1.IsTransformed() {
			continue
		}
		n++
		for _, p := range res.level2.Ranked {
			sums[p.Technique] += p.Probability
		}
	}
	if n == 0 {
		return sums
	}
	for t := range sums {
		sums[t] /= float64(n)
	}
	return sums
}

// printTechniqueTable renders a technique-probability table sorted by the
// canonical technique order.
func printTechniqueTable(w io.Writer, title string, avg map[transform.Technique]float64) {
	fmt.Fprintf(w, "%s\n", title)
	for _, t := range transform.Techniques {
		fmt.Fprintf(w, "  %-26s %6.2f%%\n", t, avg[t]*100)
	}
}
