package study

import (
	"strings"
	"testing"
)

// TestCascadeExperiment pins the sharded-crawl contract: shards persist into
// the shared store as they go, and the re-crawl never pays full pipeline
// cost — every verdict comes from disk or the in-batch dedup cache.
func TestCascadeExperiment(t *testing.T) {
	r := getRunner(t)
	c, err := r.RunCascade(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(c.Shards))
	}

	totalFiles, totalBypassed := 0, 0
	for _, s := range c.Shards {
		if s.Files == 0 {
			t.Fatalf("shard %d scanned no files", s.Shard)
		}
		totalFiles += s.Files
		totalBypassed += s.Bypassed
	}
	// The wild mix is mostly regular/minified, so the cascade must route a
	// real fraction of the crawl around the pipeline.
	if totalBypassed == 0 {
		t.Error("no shard bypassed anything; triage is wired but inert")
	}

	if c.Recrawl.Files != totalFiles {
		t.Fatalf("re-crawl covered %d files, shards scanned %d", c.Recrawl.Files, totalFiles)
	}
	if got := c.Recrawl.FullScans(); got != 0 {
		t.Errorf("re-crawl paid full pipeline cost for %d files, want 0", got)
	}
	if c.Recrawl.StoreHits == 0 {
		t.Error("re-crawl hit the store zero times")
	}
	// Every distinct content scanned in the shards is persisted.
	if c.Store.Entries == 0 || c.Store.Entries > totalFiles {
		t.Errorf("store entries = %d after a %d-file crawl", c.Store.Entries, totalFiles)
	}

	var sb strings.Builder
	c.Print(&sb)
	for _, want := range []string{"shard 0", "shard 2", "re-crawl", "store:"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("cascade report missing %q:\n%s", want, sb.String())
		}
	}
}
