package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// Service-layer dedup: the scanner's content-hash LRU is shared across HTTP
// requests, so a script scanned in one request answers from the cache in the
// next — including under the contiguous-prefix cancellation contract when a
// request times out mid-batch.

// TestServiceDedupAcrossRequests: two concurrent identical submissions
// through a single worker produce exactly one full scan and one cache hit,
// and the cache's occupancy shows up on the admin endpoint.
func TestServiceDedupAcrossRequests(t *testing.T) {
	reg := swapObs(t)
	scanner := tinyScanner(t, core.ScanOptions{Workers: 1, Dedup: true, DedupCapacity: 32})
	_, ts := newTestServer(t, scanner, Config{Concurrency: 1})

	// One worker serializes the two jobs, so the second identical body is
	// deterministically a replay of the first.
	const src = "var shared = 1; function f(x) { return x + shared; } f(1);"
	first := asyncPost(ts.URL, src)
	second := asyncPost(ts.URL, src)
	var dedupedCount int
	for _, ch := range []chan postResult{first, second} {
		r := <-ch
		if r.err != nil || r.status != http.StatusOK {
			t.Fatalf("submission failed: status %d err %v", r.status, r.err)
		}
		var rep Report
		if err := json.Unmarshal(r.body, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Deduped {
			dedupedCount++
		}
		// Replayed or not, the verdict is the same.
		if !rep.Transformed || rep.Minified != tinyL1Probs[1] {
			t.Errorf("verdict diverged on replay: %+v", rep)
		}
	}
	if dedupedCount != 1 {
		t.Errorf("%d of 2 identical submissions deduped, want exactly 1", dedupedCount)
	}
	if got := reg.Counter("scan.cache.hit").Value(); got != 1 {
		t.Errorf("scan.cache.hit = %d, want 1", got)
	}

	resp, err := http.Get(ts.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep AdminReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Cache == nil {
		t.Fatal("dedup daemon reports no cache stats on the admin endpoint")
	}
	if rep.Cache.Entries != 1 || rep.Cache.Capacity != 32 {
		t.Errorf("cache stats = %+v, want 1 entry of 32", rep.Cache)
	}
	if rep.Deduped != 1 {
		t.Errorf("admin deduped total = %d, want 1", rep.Deduped)
	}
}

// TestServiceDedupWarmCacheThenTimeout is the service-layer version of the
// core warm-cache cancellation test: a batch of cached scripts with one
// huge, uncached file spliced into the middle, scanned under a request
// timeout the huge file cannot meet. The response must be the truncated,
// contiguous, input-ordered prefix of cache replays that precede it.
//
// Two servers share one scanner: the warm server's generous timeout fills
// the cache, the cancel server's 50ms budget forces the cut — which also
// pins that the cache lives on the scanner, not on any one HTTP front end.
func TestServiceDedupWarmCacheThenTimeout(t *testing.T) {
	swapObs(t)
	scanner := tinyScanner(t, core.ScanOptions{Workers: 4, Dedup: true})
	_, warm := newTestServer(t, scanner, Config{Concurrency: 1, RequestTimeout: time.Minute, MaxRequestBytes: 64 << 20})
	_, cancel := newTestServer(t, scanner, Config{Concurrency: 1, RequestTimeout: 50 * time.Millisecond, MaxRequestBytes: 64 << 20})

	small := make([]ScanFile, 40)
	for i := range small {
		small[i] = ScanFile{
			Path:   fmt.Sprintf("warm_%02d.js", i),
			Source: fmt.Sprintf("var w%d = %d; function g%d(x) { return x - w%d; } g%d(9);", i, i, i, i, i),
		}
	}
	resp, body := postBatch(t, warm.URL, ScanRequest{Files: small})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request: status %d body %s", resp.StatusCode, body)
	}
	var warmed BatchResponse
	if err := json.Unmarshal(body, &warmed); err != nil {
		t.Fatal(err)
	}
	if warmed.Stats.Truncated || warmed.Stats.Deduped != 0 {
		t.Fatalf("warm request stats = %+v", warmed.Stats)
	}

	// The cut request: cached files 0..19, then a large uncached script the
	// 50ms budget cannot cover, then cached files 20..39.
	var big strings.Builder
	for i := 0; i < 200000; i++ {
		fmt.Fprintf(&big, "var v%d = %d; v%d += v%d * 2;\n", i, i, i, i)
	}
	files := make([]ScanFile, 0, len(small)+1)
	files = append(files, small[:20]...)
	files = append(files, ScanFile{Path: "big.js", Source: big.String()})
	files = append(files, small[20:]...)

	resp, body = postBatch(t, cancel.URL, ScanRequest{Files: files})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cut request: status %d body %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Stats.Truncated {
		t.Fatal("request outlived its 50ms budget without truncation (big.js finished implausibly fast)")
	}
	if !strings.Contains(out.Error, "scan cut short") {
		t.Errorf("truncated batch error = %q", out.Error)
	}
	// The contiguous prefix stops at big.js: everything before it replays
	// from the warm cache in microseconds, big.js never finishes.
	if len(out.Results) != 20 {
		t.Fatalf("truncated batch returned %d results, want the 20 warm files before big.js", len(out.Results))
	}
	for i, r := range out.Results {
		if r.Path != files[i].Path {
			t.Fatalf("result %d is %q, want %q: truncated prefix not input-ordered", i, r.Path, files[i].Path)
		}
		if !r.Deduped {
			t.Errorf("result %d (%s) not served from the warm cache", i, r.Path)
		}
		if r.Error != "" {
			t.Errorf("result %d: %s", i, r.Error)
		}
	}
	if out.Stats.Deduped != len(out.Results) {
		t.Errorf("stats.Deduped = %d, want %d", out.Stats.Deduped, len(out.Results))
	}
}
