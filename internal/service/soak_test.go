package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
)

// The soak test is the acceptance gate for the service: sustained concurrent
// /v1/scan traffic must return verdicts bit-identical to a direct ScanBatch
// over the same detectors. Canned constant-probability models would make
// that comparison vacuous (every file scores the same), so splitDetector
// builds forests of depth-1 trees over the hashed n-gram frequencies:
// inference stays trivial, but each file's probabilities depend on its
// content, and any cross-request result mixing shows up as a value mismatch,
// not just a path mismatch.

// discriminatingBuckets extracts the corpus's feature vectors and returns
// the n-gram buckets whose occupancy is mixed — present in some files,
// absent in others — so a split on them actually separates the corpus.
func discriminatingBuckets(t *testing.T, inputs []core.Input, featOpts features.Options) []int32 {
	t.Helper()
	ext := features.NewExtractor(featOpts)
	occupied := make([]int, featOpts.Dims())
	for _, in := range inputs {
		vec, err := ext.Extract(in.Source)
		if err != nil {
			t.Fatalf("extract %s: %v", in.Path, err)
		}
		for b := 0; b < featOpts.Dims(); b++ {
			if vec[b] > 0 {
				occupied[b]++
			}
		}
	}
	var buckets []int32
	lo, hi := len(inputs)/4, 3*len(inputs)/4
	for b, n := range occupied {
		if n >= lo && n <= hi {
			buckets = append(buckets, int32(b))
		}
	}
	if len(buckets) < 8 {
		t.Fatalf("only %d mixed-occupancy buckets; corpus not diverse enough for split detectors", len(buckets))
	}
	return buckets
}

// splitDetector builds a detector whose per-label probability is the forest
// average over four single-split trees, each keyed to one of the supplied
// mixed-occupancy n-gram buckets. Written and reloaded through the v2 model
// format like every real model.
func splitDetector(t *testing.T, labels []string, salt int, buckets []int32, featOpts features.Options) *core.Detector {
	t.Helper()
	forests := make([]*ml.Forest, len(labels))
	for i := range labels {
		trees := make([]*ml.Tree, 4)
		for j := range trees {
			trees[j] = &ml.Tree{Nodes: []ml.TreeNode{
				// Threshold 0 splits on bucket occupancy: whether the file
				// contains any node-type 4-gram hashing to this bucket.
				{Feature: buckets[(salt+i*17+j*5)%len(buckets)], Threshold: 0, Left: 1, Right: 2},
				{Feature: 0, Left: -1, Right: -1, Prob: 0.08 + 0.05*float64(i) + 0.01*float64(j)},
				{Feature: 0, Left: -1, Right: -1, Prob: 0.93 - 0.04*float64(i) - 0.01*float64(j)},
			}}
		}
		forests[i] = &ml.Forest{Trees: trees}
	}
	chain := &ml.Chain{Names: append([]string(nil), labels...), Forests: forests}
	var buf bytes.Buffer
	fp := ml.Fingerprint{
		NGramDims:    uint32(featOpts.Dims()),
		NGramLen:     uint32(featOpts.NGramLength()),
		RuleFeatures: featOpts.RuleFeatures,
	}
	if err := ml.WriteModel(&buf, chain, fp); err != nil {
		t.Fatalf("write split model: %v", err)
	}
	d, err := core.Load(&buf, featOpts)
	if err != nil {
		t.Fatalf("load split model: %v", err)
	}
	return d
}

// soakCorpus generates n distinct scripts. The n-gram features hash *node
// type* sequences, so the files must differ structurally — each index mixes
// in a different subset of syntactic constructs — or every file would land
// in the same buckets and the split trees could not disagree.
func soakCorpus(n int) []core.Input {
	inputs := make([]core.Input, n)
	for i := range inputs {
		var b strings.Builder
		fmt.Fprintf(&b, "var alpha%d = %d;\n", i, i*7)
		fmt.Fprintf(&b, "function work%d(x) { return x * %d + alpha%d; }\n", i, i+3, i)
		if i%2 == 0 {
			fmt.Fprintf(&b, "if (alpha%d > 3) { alpha%d -= 1; } else { alpha%d += 1; }\n", i, i, i)
		}
		if i%3 == 0 {
			fmt.Fprintf(&b, "for (var j%d = 0; j%d < %d; j%d++) { alpha%d += j%d; }\n", i, i, i+2, i, i, i)
		}
		if i%4 == 0 {
			fmt.Fprintf(&b, "var arr%d = [1, 2, %d]; var obj%d = { a: 1, b: \"%s\" };\n",
				i, i, i, strings.Repeat("xyz", 1+i%13))
		}
		if i%5 == 0 {
			fmt.Fprintf(&b, "try { work%d(null.x); } catch (e%d) { alpha%d = 0; }\n", i, i, i)
		}
		if i%6 == 0 {
			fmt.Fprintf(&b, "switch (alpha%d) { case 1: break; default: alpha%d = 2; }\n", i, i)
		}
		if i%7 == 0 {
			fmt.Fprintf(&b, "var tern%d = alpha%d > 1 ? \"hi\" : \"lo\";\nwhile (alpha%d > 0) { alpha%d -= 3; }\n", i, i, i, i)
		}
		fmt.Fprintf(&b, "console.log(work%d(%d));\n", i, i)
		inputs[i] = core.Input{Path: fmt.Sprintf("soak_%03d.js", i), Source: b.String()}
	}
	return inputs
}

// expected is the transport-independent part of a verdict.
type expected struct {
	transformed                   bool
	regular, minified, obfuscated float64
	probs                         map[string]float64
}

// matchReport compares a decoded HTTP Report against the direct-scan verdict
// with exact float equality: encoding/json renders float64 at shortest
// round-trippable precision, so any inequality here is a real divergence,
// not formatting noise.
func matchReport(got Report, want expected) error {
	if got.Error != "" {
		return fmt.Errorf("unexpected per-file error %q", got.Error)
	}
	if got.Transformed != want.transformed ||
		got.Regular != want.regular || got.Minified != want.minified || got.Obfuscated != want.obfuscated {
		return fmt.Errorf("level 1 diverged: got %v/%v/%v/%v want %v/%v/%v/%v",
			got.Transformed, got.Regular, got.Minified, got.Obfuscated,
			want.transformed, want.regular, want.minified, want.obfuscated)
	}
	if len(got.Probabilities) != len(want.probs) {
		return fmt.Errorf("%d technique probabilities, want %d", len(got.Probabilities), len(want.probs))
	}
	for name, p := range want.probs {
		if got.Probabilities[name] != p {
			return fmt.Errorf("P(%s) = %v, want %v", name, got.Probabilities[name], p)
		}
	}
	return nil
}

// TestSoakConcurrentTrafficMatchesScanBatch hammers the service with mixed
// single-body and batch submissions from concurrent clients (run it under
// -race) and checks every verdict bit-for-bit against a direct ScanBatch
// reference over the same detectors — with the shared dedup cache on, so
// cache replays are held to the same standard as fresh scans.
func TestSoakConcurrentTrafficMatchesScanBatch(t *testing.T) {
	swapObs(t)
	featOpts := features.Options{NGramDims: 256}
	corpus := soakCorpus(48)
	buckets := discriminatingBuckets(t, corpus, featOpts)
	l1 := splitDetector(t, core.Level1Labels, 1, buckets, featOpts)
	l2 := splitDetector(t, core.Level2Labels(), 5, buckets, featOpts)

	// Reference: one direct batch scan, no service, no dedup.
	ref, err := core.NewScanner(l1, l2, core.ScanOptions{Workers: 1, ForceLevel2: true})
	if err != nil {
		t.Fatal(err)
	}
	refResults, _, err := ref.ScanBatchContext(context.Background(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]expected, len(refResults))
	distinct := make(map[float64]bool)
	for i := range refResults {
		r := &refResults[i]
		if r.Err != nil {
			t.Fatalf("reference scan of %s failed: %v", r.Path, r.Err)
		}
		e := expected{
			transformed: r.Level1.IsTransformed(),
			regular:     r.Level1.Regular,
			minified:    r.Level1.Minified,
			obfuscated:  r.Level1.Obfuscated,
			probs:       make(map[string]float64),
		}
		for _, p := range r.Level2.Ranked {
			e.probs[p.Technique.String()] = p.Probability
		}
		want[r.Path] = e
		distinct[r.Level1.Regular] = true
	}
	// Sanity: the corpus must actually exercise content-dependence, or the
	// bit-identical comparison proves nothing.
	if len(distinct) < 4 {
		t.Fatalf("split detectors produced only %d distinct regular-probabilities across the corpus", len(distinct))
	}

	serving, err := core.NewScanner(l1, l2, core.ScanOptions{Workers: 2, ForceLevel2: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	s, ts := newTestServer(t, serving, Config{Concurrency: 2, RequestTimeout: time.Minute})

	const (
		clients   = 6
		perClient = 20
	)
	var filesSent atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1 + g)))
			for r := 0; r < perClient; r++ {
				if rng.Intn(3) == 0 {
					// Single raw-body submission.
					in := corpus[rng.Intn(len(corpus))]
					resp, err := http.Post(ts.URL+"/v1/scan?path="+in.Path, "application/javascript", strings.NewReader(in.Source))
					if err != nil {
						t.Errorf("client %d: %v", g, err)
						return
					}
					var rep Report
					decErr := json.NewDecoder(resp.Body).Decode(&rep)
					resp.Body.Close()
					if decErr != nil || resp.StatusCode != http.StatusOK {
						t.Errorf("client %d: single status %d decode %v", g, resp.StatusCode, decErr)
						return
					}
					filesSent.Add(1)
					if rep.Path != in.Path {
						t.Errorf("client %d: got path %q, want %q", g, rep.Path, in.Path)
						return
					}
					if err := matchReport(rep, want[in.Path]); err != nil {
						t.Errorf("client %d: %s: %v", g, in.Path, err)
					}
					continue
				}
				// Batch submission over a wrap-around window of the corpus.
				start, k := rng.Intn(len(corpus)), 1+rng.Intn(8)
				req := ScanRequest{}
				for i := 0; i < k; i++ {
					in := corpus[(start+i)%len(corpus)]
					req.Files = append(req.Files, ScanFile{Path: in.Path, Source: in.Source})
				}
				payload, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/scan", "application/json", bytes.NewReader(payload))
				if err != nil {
					t.Errorf("client %d: %v", g, err)
					return
				}
				var out BatchResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if decErr != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: batch status %d decode %v", g, resp.StatusCode, decErr)
					return
				}
				filesSent.Add(int64(k))
				if out.Stats.Truncated || out.Error != "" {
					t.Errorf("client %d: batch truncated: %+v", g, out)
					return
				}
				if len(out.Results) != k {
					t.Errorf("client %d: %d results for %d files", g, len(out.Results), k)
					return
				}
				for i, rep := range out.Results {
					wantPath := req.Files[i].Path
					if rep.Path != wantPath {
						t.Errorf("client %d: result %d is %q, want %q (ordering broken under load)", g, i, rep.Path, wantPath)
						return
					}
					if err := matchReport(rep, want[wantPath]); err != nil {
						t.Errorf("client %d: %s: %v", g, wantPath, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Cross-check the admin aggregates against the client-side tallies, then
	// drain and verify nothing outlives the run.
	resp, err := http.Get(ts.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var rep AdminReport
	decErr := json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if decErr != nil {
		t.Fatal(decErr)
	}
	if rep.Requests != clients*perClient {
		t.Errorf("admin requests = %d, want %d", rep.Requests, clients*perClient)
	}
	if rep.Rejected != 0 {
		t.Errorf("soak saw %d rejections with an unsaturated queue", rep.Rejected)
	}
	if rep.Files != filesSent.Load() {
		t.Errorf("admin files = %d, clients sent %d", rep.Files, filesSent.Load())
	}
	if rep.Cache == nil || rep.Cache.Entries != len(corpus) {
		t.Errorf("dedup cache holds %+v, want %d entries", rep.Cache, len(corpus))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	ts.Close()
	checkNoGoroutineLeak(t, before)
}
