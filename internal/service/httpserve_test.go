package service

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestStartHTTPStopDrainsServer pins the contract of the shared shutdown
// helper behind jsdetect -pprof and jsscand -pprof: the server answers while
// running, and stop() both closes the listener and waits for the serve
// goroutine to retire — no orphaned goroutine, no half-open listener.
func TestStartHTTPStopDrainsServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	stop := StartHTTP(ln, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))

	url := fmt.Sprintf("http://%s/", ln.Addr())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET while running: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Errorf("body = %q, want pong", body)
	}

	stop()
	checkNoGoroutineLeak(t, before)
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond); err == nil {
		t.Error("listener still accepting after stop")
	}
	// stop is safe to call twice (idempotent close path would panic if the
	// helper closed the done channel from both sides).
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("second stop panicked: %v", r)
		}
	}()
	stop()
}

// TestStartHTTPNilHandler: nil means the default mux, which is where
// net/http/pprof registers — the reason both binaries pass nil.
func TestStartHTTPNilHandler(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := StartHTTP(ln, nil)
	defer stop()
	resp, err := http.Get(fmt.Sprintf("http://%s/nonexistent-path-404", ln.Addr()))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("default mux status = %d, want 404", resp.StatusCode)
	}
}

// TestServeGracefulShutdown runs the whole daemon lifecycle the way jsscand
// does — Serve on a real listener, traffic, then context cancellation — and
// checks the SIGTERM path: Serve returns nil, the listener is closed, the
// pool has drained, and no goroutines outlive the run.
func TestServeGracefulShutdown(t *testing.T) {
	swapObs(t)
	before := runtime.NumGoroutine()

	s := New(tinyScanner(t, core.ScanOptions{Workers: 1}), Config{Concurrency: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln, 10*time.Second) }()

	url := fmt.Sprintf("http://%s", ln.Addr())
	waitFor(t, "server to answer", func() bool {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	resp, err := http.Post(url+"/v1/scan", "application/javascript", strings.NewReader("var a = 1;"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan via Serve: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v on graceful shutdown, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Serve did not return after cancellation")
	}
	if !s.Draining() {
		t.Error("server not draining after Serve returned")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond); err == nil {
		t.Error("listener still accepting after shutdown")
	}
	checkNoGoroutineLeak(t, before)
}

// TestServeListenerFailure: when the listener dies underneath Serve (not via
// the context), Serve drains the pool and reports the listener error.
func TestServeListenerFailure(t *testing.T) {
	swapObs(t)
	s := New(tinyScanner(t, core.ScanOptions{Workers: 1}), Config{Concurrency: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(context.Background(), ln, 5*time.Second) }()
	waitFor(t, "server to start", func() bool {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", ln.Addr()))
		if err != nil {
			return false
		}
		resp.Body.Close()
		return true
	})
	ln.Close()
	select {
	case err := <-serveErr:
		if err == nil {
			t.Error("Serve returned nil after its listener died")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after listener close")
	}
	if !s.Draining() {
		t.Error("pool not drained after listener failure")
	}
}
