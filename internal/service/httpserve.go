package service

import (
	"net"
	"net/http"
)

// StartHTTP serves handler (nil means http.DefaultServeMux, where pprof
// registers) on ln in a background goroutine whose exit is tracked: the
// returned stop function closes the listener, which unblocks Serve, and then
// waits for the goroutine to return — so the server can never outlive its
// owner. This is the shared shutdown helper behind jsdetect -pprof and
// jsscand -pprof; the goroutine-hygiene analyzer's drain contract is what it
// packages up.
func StartHTTP(ln net.Listener, handler http.Handler) (stop func()) {
	srv := &http.Server{Handler: handler}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return func() {
		ln.Close()
		<-done
	}
}
