package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/transform"
)

var (
	trainedOnce sync.Once
	trained     *core.Trained
	trainedErr  error
)

// getTrained trains the paper pipeline once per package run, with the same
// configuration the core tests use (small corpus, small forests — minutes
// would be wrong for a gate, seconds are fine).
func getTrained(t *testing.T) *core.Trained {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping end-to-end training in -short mode")
	}
	trainedOnce.Do(func() {
		trained, trainedErr = core.Train(core.TrainConfig{NumRegular: 90, Options: core.Options{
			Features: features.Options{NGramDims: 512},
			Forest: ml.ForestOptions{
				NumTrees: 20,
				Parallel: true,
				Tree:     ml.TreeOptions{MTry: 96},
			},
			Seed: 7,
		}})
	})
	if trainedErr != nil {
		t.Fatalf("train: %v", trainedErr)
	}
	return trained
}

// TestMetamorphicThroughService enforces the detector-level metamorphic
// property — applying technique T must not drop P(T) by more than the shared
// tolerance — through the whole service stack: real trained models, POST
// /v1/scan, JSON round-trip. The sweep itself is core.MetamorphicSweep, the
// same implementation the core test drives with Detector.Probs directly, so
// the two layers can never drift apart on tolerance or seed policy.
func TestMetamorphicThroughService(t *testing.T) {
	tr := getTrained(t)
	swapObs(t)

	scanner, err := core.NewScanner(tr.Level1, tr.Level2, core.ScanOptions{
		Workers: 2,
		// The sweep needs technique probabilities for the *original* regular
		// files too, which level 1 correctly declines to escalate — the same
		// reason jsscand defaults to -full-probs.
		ForceLevel2: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, scanner, Config{Concurrency: 1, RequestTimeout: time.Minute, MaxRequestBytes: 64 << 20})

	// probs answers through HTTP: one raw-body scan, probabilities read back
	// out of the JSON report in transform.Techniques order.
	probs := func(src string) ([]float64, error) {
		resp, err := http.Post(ts.URL+"/v1/scan", "application/javascript", strings.NewReader(src))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("scan status %d", resp.StatusCode)
		}
		var rep Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			return nil, err
		}
		if rep.Error != "" {
			return nil, fmt.Errorf("scan failed: %s", rep.Error)
		}
		if len(rep.Probabilities) != len(transform.Techniques) {
			return nil, fmt.Errorf("%d technique probabilities, want %d", len(rep.Probabilities), len(transform.Techniques))
		}
		out := make([]float64, len(transform.Techniques))
		for i, tech := range transform.Techniques {
			out[i] = rep.Probabilities[tech.String()]
		}
		return out, nil
	}

	// A few held-out files suffice: each one costs 2 HTTP scans per
	// technique, and the core test already sweeps a wider sample in-process.
	files := tr.TestRegular
	if len(files) > 3 {
		files = files[:3]
	}
	if len(files) == 0 {
		t.Fatal("no held-out regular files")
	}
	violations, err := core.MetamorphicSweep(files, probs)
	if err != nil {
		t.Fatalf("sweep over HTTP: %v", err)
	}
	for _, v := range violations {
		t.Error(v)
	}
}
