package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/transform"
)

// The service tests run against two kinds of scanner: a canned-probability
// one (leaf-only forests, same construction as core's scanner tests but
// round-tripped through the model format because Detector internals are not
// exported) for fast plumbing tests with exactly known outputs, and a real
// trained pair (soak_test.go) when verdicts must depend on the input.

// tinyL2Probs are the canned level 2 probabilities, one per technique in
// transform.Techniques order. Two-decimal literals so golden JSON responses
// render cleanly.
var tinyL2Probs = []float64{0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6, 0.55, 0.5}

// tinyL1Probs flag every file as minified so level 2 always runs.
var tinyL1Probs = []float64{0.1, 0.9, 0.2}

// tinyDetector builds a constant-output detector by writing a leaf-only
// classifier chain in the v2 model format and loading it back.
func tinyDetector(t *testing.T, labels []string, probs []float64, featOpts features.Options) *core.Detector {
	t.Helper()
	forests := make([]*ml.Forest, len(labels))
	for i := range forests {
		forests[i] = &ml.Forest{Trees: []*ml.Tree{
			{Nodes: []ml.TreeNode{{Feature: 0, Left: -1, Right: -1, Prob: probs[i]}}},
		}}
	}
	chain := &ml.Chain{Names: append([]string(nil), labels...), Forests: forests}
	var buf bytes.Buffer
	fp := ml.Fingerprint{
		NGramDims:    uint32(featOpts.Dims()),
		NGramLen:     uint32(featOpts.NGramLength()),
		RuleFeatures: featOpts.RuleFeatures,
	}
	if err := ml.WriteModel(&buf, chain, fp); err != nil {
		t.Fatalf("write tiny model: %v", err)
	}
	d, err := core.Load(&buf, featOpts)
	if err != nil {
		t.Fatalf("load tiny model: %v", err)
	}
	return d
}

// tinyScanner pairs canned level 1 and level 2 detectors on a small feature
// layout.
func tinyScanner(t *testing.T, opts core.ScanOptions) *core.Scanner {
	t.Helper()
	featOpts := features.Options{NGramDims: 256}
	l1 := tinyDetector(t, core.Level1Labels, tinyL1Probs, featOpts)
	l2 := tinyDetector(t, core.Level2Labels(), tinyL2Probs, featOpts)
	s, err := core.NewScanner(l1, l2, opts)
	if err != nil {
		t.Fatalf("NewScanner: %v", err)
	}
	return s
}

// swapObs installs a fresh registry for the test and restores the previous
// one afterwards.
func swapObs(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	prev := obs.Swap(reg)
	t.Cleanup(func() { obs.Swap(prev) })
	return reg
}

// newTestServer starts a Server over the given scanner and fronts it with an
// httptest listener; cleanup drains the pool and closes the listener.
func newTestServer(t *testing.T, scanner *core.Scanner, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(scanner, cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

// checkNoGoroutineLeak polls until the goroutine count returns to the
// baseline (finished goroutines take a moment to retire) and fails when it
// never does — the same before/after pattern the PR 3 cancellation leak
// tests use.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	for i := 0; i < 100; i++ {
		// Keep-alive connections pin a read-loop goroutine on each side;
		// they are the client's to close, not a server leak.
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
}

// postScript submits one raw script body.
func postScript(t *testing.T, url, src string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/scan", "application/javascript", strings.NewReader(src))
	if err != nil {
		t.Fatalf("POST /v1/scan: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, body
}

// postBatch submits a JSON batch.
func postBatch(t *testing.T, url string, req ScanRequest) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/scan", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST /v1/scan: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, body
}

// decodeJSON unmarshals into a generic value for golden comparison.
func decodeJSON(t *testing.T, data []byte) any {
	t.Helper()
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, data)
	}
	return v
}

// TestScanSingleGolden pins the exact JSON verdict for a raw script body:
// the canned detectors make every probability a known constant, so the
// response is compared against a full golden document.
func TestScanSingleGolden(t *testing.T) {
	swapObs(t)
	_, ts := newTestServer(t, tinyScanner(t, core.ScanOptions{Workers: 1}), Config{Concurrency: 1})
	resp, body := postScript(t, ts.URL, "var a = 1; function f(x) { return x + a; } f(2);")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	golden := `{
		"path": "body.js",
		"transformed": true,
		"regular": 0.1,
		"minified": 0.9,
		"obfuscated": 0.2,
		"probabilities": {
			"identifier obfuscation": 0.95,
			"string obfuscation": 0.9,
			"global array": 0.85,
			"no alphanumeric": 0.8,
			"dead-code injection": 0.75,
			"control-flow flattening": 0.7,
			"self-defending": 0.65,
			"debug protection": 0.6,
			"minification simple": 0.55,
			"minification advanced": 0.5
		},
		"techniques": [
			{"technique": "identifier obfuscation", "probability": 0.95},
			{"technique": "string obfuscation", "probability": 0.9},
			{"technique": "global array", "probability": 0.85},
			{"technique": "no alphanumeric", "probability": 0.8}
		]
	}`
	if got, want := decodeJSON(t, body), decodeJSON(t, []byte(golden)); !reflect.DeepEqual(got, want) {
		t.Errorf("single-scan response diverges from golden:\ngot  %s\nwant %s", body, golden)
	}
}

// TestScanSinglePathQuery covers the ?path= passthrough on raw bodies.
func TestScanSinglePathQuery(t *testing.T) {
	swapObs(t)
	_, ts := newTestServer(t, tinyScanner(t, core.ScanOptions{Workers: 1}), Config{Concurrency: 1})
	resp, err := http.Post(ts.URL+"/v1/scan?path=lib/vendor.js", "text/plain", strings.NewReader("var x = 1;"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Path != "lib/vendor.js" {
		t.Errorf("path = %q, want lib/vendor.js", rep.Path)
	}
}

// TestScanBatchOrdering checks that a JSON batch comes back one report per
// input, in input order, with per-file parse failures isolated in place —
// the service must inherit the batch engine's ordering contract across the
// worker pool and the HTTP boundary.
func TestScanBatchOrdering(t *testing.T) {
	swapObs(t)
	_, ts := newTestServer(t, tinyScanner(t, core.ScanOptions{Workers: 4}), Config{Concurrency: 2})
	req := ScanRequest{}
	for i := 0; i < 40; i++ {
		req.Files = append(req.Files, ScanFile{
			Path:   fmt.Sprintf("file_%03d.js", i),
			Source: fmt.Sprintf("var a%d = %d; function f%d(x) { return x + a%d; } f%d(1);", i, i, i, i, i),
		})
	}
	req.Files[7].Source = "function ( {{{"
	resp, body := postBatch(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(out.Results) != len(req.Files) {
		t.Fatalf("%d results for %d files", len(out.Results), len(req.Files))
	}
	for i, r := range out.Results {
		if r.Path != req.Files[i].Path {
			t.Fatalf("result %d path %q, want %q (ordering broken)", i, r.Path, req.Files[i].Path)
		}
		if i == 7 {
			if r.Error == "" || !strings.Contains(r.Error, "parse") {
				t.Errorf("broken file must carry its parse error, got %+v", r)
			}
			continue
		}
		if r.Error != "" {
			t.Errorf("healthy file %d failed: %s", i, r.Error)
		}
	}
	if out.Stats.Files != 40 || out.Stats.ParseFailures != 1 || out.Stats.Transformed != 39 {
		t.Errorf("stats = %+v", out.Stats)
	}
	if out.Stats.Truncated || out.Error != "" {
		t.Errorf("uncancelled batch must not be truncated: %+v", out)
	}
}

// TestScanMalformedInputs is the malformed-input table: every bad request
// shape gets the pinned status and a JSON error body, and none of them take
// the service down (the probe scan at the end must still work).
func TestScanMalformedInputs(t *testing.T) {
	swapObs(t)
	_, ts := newTestServer(t, tinyScanner(t, core.ScanOptions{Workers: 1}),
		Config{Concurrency: 1, MaxRequestBytes: 2048})
	cases := []struct {
		name        string
		method      string
		contentType string
		body        string
		wantStatus  int
		wantErr     string
	}{
		{"wrong method", http.MethodGet, "", "", http.StatusMethodNotAllowed, "use POST"},
		{"empty body", http.MethodPost, "application/javascript", "", http.StatusBadRequest, "empty script"},
		{"bad json", http.MethodPost, "application/json", "{not json", http.StatusBadRequest, "malformed JSON"},
		{"json array", http.MethodPost, "application/json", `["a.js"]`, http.StatusBadRequest, "malformed JSON"},
		{"unknown field", http.MethodPost, "application/json", `{"scripts":[]}`, http.StatusBadRequest, "malformed JSON"},
		{"no files", http.MethodPost, "application/json", `{"files":[]}`, http.StatusBadRequest, "no files"},
		{"file without source", http.MethodPost, "application/json", `{"files":[{"path":"a.js"}]}`, http.StatusBadRequest, "has no source"},
		{"oversized body", http.MethodPost, "application/javascript", strings.Repeat("x", 4096), http.StatusRequestEntityTooLarge, "exceeds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+"/v1/scan", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.contentType != "" {
				req.Header.Set("Content-Type", tc.contentType)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body is not JSON: %v (%s)", err, body)
			}
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Errorf("error %q does not mention %q", e.Error, tc.wantErr)
			}
		})
	}
	// The service must still answer after the whole table.
	resp, body := postScript(t, ts.URL, "var ok = true;")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe scan after malformed inputs: status %d, body %s", resp.StatusCode, body)
	}
}

// TestHealthz pins the liveness endpoint in both states.
func TestHealthz(t *testing.T) {
	swapObs(t)
	s, ts := newTestServer(t, tinyScanner(t, core.ScanOptions{Workers: 1}), Config{Concurrency: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, h)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", resp2.StatusCode)
	}
}

// TestAdminEndpoint checks the admin surface: request totals, queue shape,
// the obs registry dump (service.* and scan.* metrics), and the cumulative
// per-stage breakdown folded in from each scan.
func TestAdminEndpoint(t *testing.T) {
	reg := swapObs(t)
	_, ts := newTestServer(t, tinyScanner(t, core.ScanOptions{Workers: 1}),
		Config{Concurrency: 1, QueueSize: 7})
	postScript(t, ts.URL, "var a = 1;")
	postBatch(t, ts.URL, ScanRequest{Files: []ScanFile{
		{Path: "a.js", Source: "var a = 1;"},
		{Path: "b.js", Source: "var b = 2;"},
	}})

	resp, err := http.Get(ts.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep AdminReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 2 || rep.Rejected != 0 || rep.Files != 3 {
		t.Errorf("admin totals = %+v, want 2 requests / 3 files", rep)
	}
	if rep.Queue.Capacity != 7 || rep.Queue.Depth != 0 || rep.Queue.Active != 0 {
		t.Errorf("queue stats = %+v", rep.Queue)
	}
	if rep.Cache != nil {
		t.Errorf("cache stats present without dedup: %+v", rep.Cache)
	}
	if rep.Draining {
		t.Error("admin reports draining on a live server")
	}
	// The registry was installed, so scans collected per-stage stats; every
	// pipeline stage that ran must appear in the cumulative breakdown.
	stages := make(map[string]int64)
	for _, st := range rep.Stages {
		stages[st.Stage] = st.Files
	}
	for _, want := range []string{"parse", "flow", "features", "infer"} {
		if stages[want] != 3 {
			t.Errorf("stage %q covered %d files, want 3 (stages %+v)", want, stages[want], rep.Stages)
		}
	}
	// The registry dump carries the service instrumentation.
	counters := make(map[string]int64)
	for _, c := range rep.Metrics.Counters {
		counters[c.Name] = c.Value
	}
	if counters["service.requests"] != 2 {
		t.Errorf("service.requests = %d, want 2", counters["service.requests"])
	}
	if counters["scan.files"] != 3 {
		t.Errorf("scan.files = %d, want 3", counters["scan.files"])
	}
	hists := make(map[string]bool)
	for _, h := range rep.Metrics.Histograms {
		hists[h.Name] = h.Count > 0
	}
	for _, want := range []string{"service.request.duration", "service.queue.wait", "service.queue.depth"} {
		if !hists[want] {
			t.Errorf("histogram %q missing or empty in admin dump", want)
		}
	}
	// The admin view and the registry agree.
	if got := reg.Counter("service.requests").Value(); got != 2 {
		t.Errorf("registry service.requests = %d, want 2", got)
	}
}

// TestExplainPassthrough: diagnostics appear only when both the daemon
// collects them and the request asks.
func TestExplainPassthrough(t *testing.T) {
	swapObs(t)
	scanner := tinyScanner(t, core.ScanOptions{Workers: 1, Explain: true})
	_, ts := newTestServer(t, scanner, Config{Concurrency: 1, Explain: true})
	// eval of a concatenated string trips the dynamic-code-sink rule.
	src := "eval(\"con\" + \"sole.log(1)\");"
	resp, err := http.Post(ts.URL+"/v1/scan?explain=1", "application/javascript", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnostics) == 0 {
		t.Error("explain request returned no diagnostics")
	}
	// Without the request flag the same scan omits them.
	_, body := postScript(t, ts.URL, src)
	var rep2 Report
	if err := json.Unmarshal(body, &rep2); err != nil {
		t.Fatal(err)
	}
	if len(rep2.Diagnostics) != 0 {
		t.Error("diagnostics leaked into a request that did not ask for them")
	}
	if len(transform.Techniques) != len(tinyL2Probs) {
		t.Fatalf("tinyL2Probs has %d entries for %d techniques", len(tinyL2Probs), len(transform.Techniques))
	}
}
