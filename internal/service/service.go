// Package service is the long-running scan daemon behind cmd/jsscand: an
// HTTP/JSON front end over the batch scan engine, shaped for crawl-scale
// traffic the way the paper's detector is meant to run in the wild. Models
// are loaded once at startup and immutable afterwards; every request flows
// through a worker pool over a bounded job queue, so a traffic burst turns
// into 429 backpressure instead of unbounded goroutines; the scanner's
// content-hash dedup LRU is shared across all requests; and shutdown is a
// graceful drain — stop accepting, finish queued work, flush metrics — built
// on the same ScanBatchContext cancellation machinery the CLI uses.
//
// Endpoints:
//
//	POST /v1/scan       single script body or JSON batch -> verdicts
//	GET  /healthz       liveness (503 while draining)
//	GET  /admin/metrics obs registry dump, per-stage totals, queue + cache
package service

import (
	"context"
	"io"
	"log"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config sizes the service.
type Config struct {
	// Concurrency is the number of scan jobs processed at once (the worker
	// pool size over the job queue); <= 0 means GOMAXPROCS. Each job's scan
	// additionally parallelizes per the scanner's own ScanOptions.Workers.
	Concurrency int
	// QueueSize bounds the number of accepted-but-not-started jobs; when the
	// queue is full new scan requests are rejected with 429 and a
	// Retry-After hint. <= 0 means DefaultQueueSize.
	QueueSize int
	// MaxRequestBytes bounds one request body; larger submissions get 413.
	// <= 0 means DefaultMaxRequestBytes.
	MaxRequestBytes int64
	// RequestTimeout is the per-request scan budget: a batch still running
	// when it expires is cut short (the response carries the contiguous
	// prefix that finished, marked truncated). <= 0 means
	// DefaultRequestTimeout.
	RequestTimeout time.Duration
	// RetryAfter is the hint sent with 429 rejections; <= 0 means
	// DefaultRetryAfter.
	RetryAfter time.Duration
	// TopK and Threshold shape the reported technique list (the paper's
	// top-k with a 10% confidence floor). Zero means DefaultTopK /
	// core.DefaultThreshold.
	TopK      int
	Threshold float64
	// Explain attaches static indicator diagnostics to responses that ask
	// for them; it requires the scanner to run with ScanOptions.Explain.
	Explain bool
	// Log receives one structured line per request; nil discards.
	Log *log.Logger
}

// Defaults for the zero Config.
const (
	DefaultQueueSize       = 64
	DefaultMaxRequestBytes = 8 << 20
	DefaultRequestTimeout  = 30 * time.Second
	DefaultRetryAfter      = time.Second
	DefaultTopK            = 4
)

func (c Config) concurrency() int {
	if c.Concurrency <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Concurrency
}

func (c Config) queueSize() int {
	if c.QueueSize <= 0 {
		return DefaultQueueSize
	}
	return c.QueueSize
}

func (c Config) maxRequestBytes() int64 {
	if c.MaxRequestBytes <= 0 {
		return DefaultMaxRequestBytes
	}
	return c.MaxRequestBytes
}

func (c Config) requestTimeout() time.Duration {
	if c.RequestTimeout <= 0 {
		return DefaultRequestTimeout
	}
	return c.RequestTimeout
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return DefaultRetryAfter
	}
	return c.RetryAfter
}

func (c Config) topK() int {
	if c.TopK <= 0 {
		return DefaultTopK
	}
	return c.TopK
}

func (c Config) threshold() float64 {
	if c.Threshold <= 0 {
		return core.DefaultThreshold
	}
	return c.Threshold
}

func (c Config) logger() *log.Logger {
	if c.Log != nil {
		return c.Log
	}
	return log.New(io.Discard, "", 0)
}

// job is one accepted scan request on its way through the queue. The handler
// that created it blocks on done; the worker that picks it up publishes the
// results before closing done, so the fields are never accessed
// concurrently.
type job struct {
	ctx      context.Context
	inputs   []core.Input
	enqueued time.Time

	results []core.FileResult
	stats   core.ScanStats
	err     error
	done    chan struct{}
}

// Server is the scan service. Create it with New, start the worker pool with
// Start, expose Handler over any HTTP listener (or let Serve run the whole
// lifecycle), and stop with Drain.
type Server struct {
	scanner *core.Scanner
	cfg     Config
	log     *log.Logger
	start   time.Time

	jobs chan *job
	// drainMu serializes enqueue against Drain's close(jobs): enqueuers
	// hold the read side around the non-blocking send, so the channel can
	// never be closed mid-send.
	drainMu  sync.RWMutex
	draining atomic.Bool
	workers  sync.WaitGroup

	// active counts jobs currently being scanned (admin surface, and the
	// deterministic hook the backpressure tests synchronize on).
	active atomic.Int64
	// requests/rejected/scanned mirror the service.* obs counters for the
	// admin endpoint, which must work even when no registry is installed.
	requests  atomic.Int64
	rejected  atomic.Int64
	scanned   atomic.Int64
	deduped   atomic.Int64
	bypassed  atomic.Int64
	storeHits atomic.Int64

	// stageMu guards the cumulative per-stage breakdown folded in from
	// every scan's ScanStats.Stages.
	stageMu sync.Mutex
	stages  []core.StageStats

	// scan runs one job; swapped out by tests that need a controllable
	// worker.
	scan func(*job)
}

// New builds a Server around an already-validated Scanner (NewScanner has
// checked model labels and feature-layout agreement; LoadLevelFile has
// checked the v2 fingerprints). The scanner is shared by every request, so
// its dedup cache — when enabled — is the service-wide verdict cache.
func New(scanner *core.Scanner, cfg Config) *Server {
	s := &Server{
		scanner: scanner,
		cfg:     cfg,
		log:     cfg.logger(),
		start:   time.Now(),
		jobs:    make(chan *job, cfg.queueSize()),
	}
	s.scan = s.runScan
	return s
}

// Start launches the worker pool. Call once, before serving traffic.
func (s *Server) Start() {
	for i := 0; i < s.cfg.concurrency(); i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for j := range s.jobs {
				obs.ObserveDuration("service.queue.wait", time.Since(j.enqueued))
				s.active.Add(1)
				s.scan(j)
				s.active.Add(-1)
				close(j.done)
			}
		}()
	}
}

// runScan executes one job on the shared scanner and folds its stats into
// the service aggregates.
func (s *Server) runScan(j *job) {
	j.results, j.stats, j.err = s.scanner.ScanBatchContext(j.ctx, j.inputs)
	s.scanned.Add(int64(j.stats.Files))
	s.deduped.Add(int64(j.stats.Deduped))
	s.bypassed.Add(int64(j.stats.Bypassed))
	s.storeHits.Add(int64(j.stats.StoreHits))
	s.foldStages(j.stats.Stages)
}

// foldStages merges one scan's per-stage breakdown into the service-lifetime
// totals served on the admin endpoint. Stage order follows the pipeline, so
// merging by first appearance preserves it.
func (s *Server) foldStages(stages []core.StageStats) {
	if len(stages) == 0 {
		return
	}
	s.stageMu.Lock()
	defer s.stageMu.Unlock()
merge:
	for _, st := range stages {
		for i := range s.stages {
			if s.stages[i].Stage == st.Stage {
				s.stages[i].Duration += st.Duration
				s.stages[i].Files += st.Files
				s.stages[i].Bytes += st.Bytes
				continue merge
			}
		}
		s.stages = append(s.stages, st)
	}
}

// enqueueResult says what happened to an enqueue attempt.
type enqueueResult int

const (
	enqueued enqueueResult = iota
	queueFull
	drainingNow
)

// enqueue offers j to the queue without blocking: a full queue is the
// backpressure signal, not a place to park goroutines.
func (s *Server) enqueue(j *job) enqueueResult {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return drainingNow
	}
	obs.Observe("service.queue.depth", obs.UnitCount, int64(len(s.jobs)))
	select {
	case s.jobs <- j:
		return enqueued
	default:
		return queueFull
	}
}

// Draining reports whether the server has begun its shutdown drain.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the service: new scan requests are rejected with
// 503, queued and in-flight jobs run to completion (each bounded by its own
// request timeout), the worker pool exits, and a final summary line is
// flushed to the log. It returns ctx.Err when ctx expires before the pool
// drains, nil otherwise. Drain is idempotent; concurrent calls all wait.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	if !s.draining.Swap(true) {
		close(s.jobs)
	}
	s.drainMu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.workers.Wait()
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.log.Printf("event=drained uptime=%s requests=%d rejected=%d files=%d deduped=%d bypassed=%d storehits=%d",
		time.Since(s.start).Round(time.Millisecond),
		s.requests.Load(), s.rejected.Load(), s.scanned.Load(), s.deduped.Load(),
		s.bypassed.Load(), s.storeHits.Load())
	return nil
}

// Serve runs the full service lifecycle on ln: workers start, the HTTP
// front end serves until ctx is cancelled, then the listener shuts down
// gracefully (in-flight handlers finish) and the queue drains. gracePeriod
// bounds the whole shutdown. The error is the listener failure when serving
// stopped on its own, or the shutdown/drain error when ctx ended the run.
func (s *Server) Serve(ctx context.Context, ln net.Listener, gracePeriod time.Duration) error {
	s.Start()
	srv := &http.Server{Handler: s.Handler()}
	var serveErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		serveErr = srv.Serve(ln)
	}()
	select {
	case <-done:
		// The listener failed on its own; drain whatever was accepted.
		drainCtx, cancel := context.WithTimeout(context.Background(), gracePeriod)
		defer cancel()
		s.Drain(drainCtx)
		return serveErr
	case <-ctx.Done():
	}
	stopCtx, cancel := context.WithTimeout(context.Background(), gracePeriod)
	defer cancel()
	// Shutdown closes the listener and waits for in-flight handlers — whose
	// jobs the still-running workers are completing — then Drain retires the
	// pool itself.
	shutdownErr := srv.Shutdown(stopCtx)
	<-done
	if err := s.Drain(stopCtx); err != nil {
		return err
	}
	return shutdownErr
}
