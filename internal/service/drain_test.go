package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// postResult is one asynchronous scan submission's outcome.
type postResult struct {
	status int
	body   []byte
	err    error
}

// asyncPost fires a raw-body scan in the background.
func asyncPost(url, src string) chan postResult {
	ch := make(chan postResult, 1)
	go func() {
		resp, err := http.Post(url+"/v1/scan", "application/javascript", strings.NewReader(src))
		if err != nil {
			ch <- postResult{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		ch <- postResult{status: resp.StatusCode, body: body, err: err}
	}()
	return ch
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// blockableServer builds a server whose single worker parks on the returned
// channel before each scan, so tests can hold jobs in flight deterministically.
func blockableServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}) {
	t.Helper()
	s := New(tinyScanner(t, core.ScanOptions{Workers: 1}), cfg)
	block := make(chan struct{})
	inner := s.scan
	s.scan = func(j *job) {
		<-block
		inner(j)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, block
}

// TestBackpressure429 pins the saturation path: with one worker held mid-scan
// and a one-slot queue already occupied, the next request must bounce with
// 429 and the configured Retry-After hint — and the queued work must still
// complete once the worker frees up.
func TestBackpressure429(t *testing.T) {
	swapObs(t)
	s, ts, block := blockableServer(t, Config{Concurrency: 1, QueueSize: 1, RetryAfter: 2 * time.Second})

	first := asyncPost(ts.URL, "var a = 1;")
	waitFor(t, "worker to pick up the first job", func() bool { return s.active.Load() == 1 })
	second := asyncPost(ts.URL, "var b = 2;")
	waitFor(t, "second job to queue", func() bool { return len(s.jobs) == 1 })

	// Queue full, worker busy: the third request must be pushed back, not
	// parked.
	resp, err := http.Post(ts.URL+"/v1/scan", "application/javascript", strings.NewReader("var c = 3;"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want 2", got)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "queue is full") {
		t.Errorf("429 body = %s", body)
	}

	// Release the worker: both held requests must complete normally.
	close(block)
	for name, ch := range map[string]chan postResult{"first": first, "second": second} {
		r := <-ch
		if r.err != nil || r.status != http.StatusOK {
			t.Errorf("%s request after release: status %d err %v", name, r.status, r.err)
		}
	}

	// The rejection is visible on the admin surface.
	aresp, err := http.Get(ts.URL + "/admin/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	var rep AdminReport
	if err := json.NewDecoder(aresp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 1 || rep.Requests != 3 {
		t.Errorf("admin after saturation: %d requests / %d rejected, want 3/1", rep.Requests, rep.Rejected)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}

// TestDrainRejectsNewWork: once the drain begins, scan submissions get 503
// (clients should fail over), while queued-and-in-flight work still finishes.
func TestDrainRejectsNewWork(t *testing.T) {
	swapObs(t)
	s, ts, block := blockableServer(t, Config{Concurrency: 1, QueueSize: 4})

	inflight := asyncPost(ts.URL, "var a = 1;")
	waitFor(t, "worker to pick up the job", func() bool { return s.active.Load() == 1 })

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	waitFor(t, "drain to begin", func() bool { return s.Draining() })

	// New work is turned away while the old job is still running.
	resp, err := http.Post(ts.URL+"/v1/scan", "application/javascript", strings.NewReader("var b = 2;"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("scan during drain = %d %s, want 503 draining", resp.StatusCode, body)
	}

	// Drain must not have finished with a job in flight.
	select {
	case err := <-drainErr:
		t.Fatalf("drain returned (%v) with a job still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(block)
	if r := <-inflight; r.err != nil || r.status != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d err %v", r.status, r.err)
	}
	if err := <-drainErr; err != nil {
		t.Errorf("drain: %v", err)
	}
	// Drain is idempotent: a second call returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestDrainDeadline: a drain bounded by an already-tight context reports the
// context error instead of hanging on a stuck worker.
func TestDrainDeadline(t *testing.T) {
	swapObs(t)
	s, ts, block := blockableServer(t, Config{Concurrency: 1, QueueSize: 4})

	stuck := asyncPost(ts.URL, "var a = 1;")
	waitFor(t, "worker to pick up the job", func() bool { return s.active.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Errorf("drain with stuck worker = %v, want context.DeadlineExceeded", err)
	}

	// Unstick and finish the drain cleanly so nothing leaks out of the test.
	close(block)
	<-stuck
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Errorf("final drain: %v", err)
	}
}

// TestDrainLeavesNoGoroutines runs a full lifecycle — start, traffic, drain —
// and verifies the goroutine count returns to its pre-server baseline: the
// worker pool, the scanner's per-job pools, and the HTTP plumbing must all
// retire.
func TestDrainLeavesNoGoroutines(t *testing.T) {
	swapObs(t)
	before := runtime.NumGoroutine()

	s := New(tinyScanner(t, core.ScanOptions{Workers: 2}), Config{Concurrency: 2})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	for i := 0; i < 6; i++ {
		resp, body := postScript(t, ts.URL, "var a = 1; function f(x) { return x; } f(a);")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan %d: status %d body %s", i, resp.StatusCode, body)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	checkNoGoroutineLeak(t, before)
}
