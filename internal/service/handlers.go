package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
)

// ScanRequest is the JSON batch form of POST /v1/scan. A request whose
// Content-Type is not application/json is instead treated as one raw script
// body (path taken from the ?path= query, defaulting to "body.js").
type ScanRequest struct {
	// Files are the scripts to classify, answered in input order.
	Files []ScanFile `json:"files"`
	// Explain attaches static indicator diagnostics to each verdict; it
	// only has an effect when the daemon runs with -explain.
	Explain bool `json:"explain,omitempty"`
}

// ScanFile is one script in a batch submission.
type ScanFile struct {
	Path   string `json:"path"`
	Source string `json:"source"`
}

// Report is the verdict on one script.
type Report struct {
	Path        string  `json:"path"`
	Transformed bool    `json:"transformed"`
	Regular     float64 `json:"regular"`
	Minified    float64 `json:"minified"`
	Obfuscated  float64 `json:"obfuscated"`
	// Probabilities maps every monitored technique to its predicted
	// probability; present whenever level 2 ran (always, when the daemon
	// scans with ForceLevel2).
	Probabilities map[string]float64 `json:"probabilities,omitempty"`
	// Techniques is the top-k ranking over the confidence floor.
	Techniques []TechniqueReport `json:"techniques,omitempty"`
	// Diagnostics carries the static indicator findings when the request
	// asked for explain and the daemon collects them.
	Diagnostics []analysis.Diagnostic `json:"diagnostics,omitempty"`
	// Deduped marks a verdict replayed from the shared content-hash cache.
	Deduped bool `json:"deduped,omitempty"`
	// Bypassed marks a verdict the stage-0 triage router synthesized
	// without the full pipeline (daemon running with -triage). It is part
	// of the verdict — a store or cache replay of a bypassed verdict reports
	// it identically — so responses stay byte-stable across daemon restarts.
	Bypassed bool `json:"bypassed,omitempty"`
	// Error is the per-file failure (typically a parse error); the
	// classification fields are zero when set.
	Error string `json:"error,omitempty"`
}

// TechniqueReport is one ranked technique in a Report.
type TechniqueReport struct {
	Technique   string  `json:"technique"`
	Probability float64 `json:"probability"`
}

// BatchResponse is the envelope of a JSON batch scan.
type BatchResponse struct {
	Results []Report   `json:"results"`
	Stats   BatchStats `json:"stats"`
	// Error is set when the scan was cut short (per-request timeout or a
	// client disconnect); Results then holds the contiguous input-ordered
	// prefix that finished before the cut.
	Error string `json:"error,omitempty"`
}

// BatchStats aggregates one batch scan.
type BatchStats struct {
	Files         int   `json:"files"`
	Bytes         int64 `json:"bytes"`
	ParseFailures int   `json:"parseFailures"`
	Transformed   int   `json:"transformed"`
	Deduped       int   `json:"deduped"`
	// Bypassed counts verdicts the triage router synthesized. StoreHits is
	// deliberately NOT part of the response: whether a verdict came from
	// disk or was computed is provenance, and responses must be identical
	// across a daemon restart against a warm store. Store traffic shows on
	// /admin/metrics instead.
	Bypassed   int   `json:"bypassed"`
	DurationNs int64 `json:"durationNs"`
	// Truncated marks a batch the per-request timeout cut short: Results
	// is the contiguous prefix that finished.
	Truncated bool `json:"truncated,omitempty"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP front end.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/scan", s.handleScan)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/admin/metrics", s.handleAdmin)
	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// handleScan is POST /v1/scan: parse, enqueue (or push back), wait, render.
func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	stop := obs.Time("service.request.duration")
	defer stop()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	obs.Add("service.requests", 1)
	s.requests.Add(1)

	inputs, explain, single, reqErr := s.parseScanRequest(w, r)
	if reqErr != nil {
		s.logRequest(r, reqErr.status, started, nil, core.ScanStats{})
		writeJSON(w, reqErr.status, errorResponse{Error: reqErr.msg})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.requestTimeout())
	defer cancel()
	j := &job{ctx: ctx, inputs: inputs, enqueued: time.Now(), done: make(chan struct{})}
	switch s.enqueue(j) {
	case drainingNow:
		s.logRequest(r, http.StatusServiceUnavailable, started, nil, core.ScanStats{})
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "service is draining"})
		return
	case queueFull:
		obs.Add("service.rejects", 1)
		s.rejected.Add(1)
		retry := int(s.cfg.retryAfter() / time.Second)
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		s.logRequest(r, http.StatusTooManyRequests, started, nil, core.ScanStats{})
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "scan queue is full, retry later"})
		return
	}
	// The worker publishes results then closes done; the job's context is
	// derived from the request's, so a client disconnect or timeout unblocks
	// this promptly via the scan's own cancellation.
	<-j.done

	if single {
		s.renderSingle(w, r, j, explain, started)
		return
	}
	resp := BatchResponse{
		Results: make([]Report, 0, len(j.results)),
		Stats: BatchStats{
			Files:         j.stats.Files,
			Bytes:         j.stats.Bytes,
			ParseFailures: j.stats.ParseFailures,
			Transformed:   j.stats.Transformed,
			Deduped:       j.stats.Deduped,
			Bypassed:      j.stats.Bypassed,
			DurationNs:    int64(j.stats.Duration),
			Truncated:     j.err != nil,
		},
	}
	if j.err != nil {
		resp.Error = fmt.Sprintf("scan cut short: %v", j.err)
	}
	for i := range j.results {
		resp.Results = append(resp.Results, s.buildReport(&j.results[i], explain))
	}
	s.logRequest(r, http.StatusOK, started, j.results, j.stats)
	writeJSON(w, http.StatusOK, resp)
}

// renderSingle answers the raw-script form: one Report object, or 504 when
// the scan budget expired before the verdict.
func (s *Server) renderSingle(w http.ResponseWriter, r *http.Request, j *job, explain bool, started time.Time) {
	if j.err != nil && len(j.results) == 0 {
		s.logRequest(r, http.StatusGatewayTimeout, started, nil, j.stats)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: fmt.Sprintf("scan cut short: %v", j.err)})
		return
	}
	if len(j.results) != 1 {
		s.logRequest(r, http.StatusInternalServerError, started, j.results, j.stats)
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: fmt.Sprintf("scan returned %d results for one script", len(j.results))})
		return
	}
	s.logRequest(r, http.StatusOK, started, j.results, j.stats)
	writeJSON(w, http.StatusOK, s.buildReport(&j.results[0], explain))
}

// requestError is a malformed-request verdict with its HTTP status.
type requestError struct {
	status int
	msg    string
}

func (e *requestError) Error() string { return e.msg }

// parseScanRequest turns the request body into scan inputs. JSON bodies are
// batches; anything else is one raw script. single reports which form the
// response must take.
func (s *Server) parseScanRequest(w http.ResponseWriter, r *http.Request) (inputs []core.Input, explain, single bool, reqErr *requestError) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxRequestBytes())
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, false, false, &requestError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return nil, false, false, &requestError{http.StatusBadRequest, fmt.Sprintf("read body: %v", err)}
	}
	ct, _, _ := strings.Cut(r.Header.Get("Content-Type"), ";")
	if strings.TrimSpace(ct) == "application/json" {
		var req ScanRequest
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, false, false, &requestError{http.StatusBadRequest, fmt.Sprintf("malformed JSON request: %v", err)}
		}
		if len(req.Files) == 0 {
			return nil, false, false, &requestError{http.StatusBadRequest, "request has no files"}
		}
		inputs = make([]core.Input, len(req.Files))
		for i, f := range req.Files {
			if f.Source == "" {
				return nil, false, false, &requestError{http.StatusBadRequest,
					fmt.Sprintf("files[%d] (%q) has no source", i, f.Path)}
			}
			path := f.Path
			if path == "" {
				path = fmt.Sprintf("files[%d].js", i)
			}
			inputs[i] = core.Input{Path: path, Source: f.Source}
		}
		return inputs, req.Explain, false, nil
	}
	if len(body) == 0 {
		return nil, false, false, &requestError{http.StatusBadRequest, "empty script body"}
	}
	path := r.URL.Query().Get("path")
	if path == "" {
		path = "body.js"
	}
	explain = r.URL.Query().Get("explain") != ""
	return []core.Input{{Path: path, Source: string(body)}}, explain, true, nil
}

// buildReport renders one scan result. Diagnostics are attached only when
// the request asked for them (and the daemon collects them).
func (s *Server) buildReport(r *core.FileResult, explain bool) Report {
	rep := Report{Path: r.Path, Deduped: r.Deduped, Bypassed: r.Bypassed}
	if r.Err != nil {
		rep.Error = r.Err.Error()
		return rep
	}
	rep.Transformed = r.Level1.IsTransformed()
	rep.Regular = r.Level1.Regular
	rep.Minified = r.Level1.Minified
	rep.Obfuscated = r.Level1.Obfuscated
	if r.Level2 != nil {
		rep.Probabilities = make(map[string]float64, len(r.Level2.Ranked))
		for _, p := range r.Level2.Ranked {
			rep.Probabilities[p.Technique.String()] = p.Probability
		}
		for _, p := range r.Level2.TopK(s.cfg.topK(), s.cfg.threshold()) {
			rep.Techniques = append(rep.Techniques, TechniqueReport{
				Technique:   p.Technique.String(),
				Probability: p.Probability,
			})
		}
	}
	if explain && s.cfg.Explain {
		rep.Diagnostics = r.Diagnostics
	}
	return rep
}

// logRequest emits the structured per-request line; dur is the handler's
// wall time (queue wait included), not just the scan.
func (s *Server) logRequest(r *http.Request, status int, started time.Time, results []core.FileResult, stats core.ScanStats) {
	// Count per-file failures so the log separates them from the verdicts.
	failures := 0
	for i := range results {
		if results[i].Err != nil {
			failures++
		}
	}
	s.log.Printf("method=%s path=%s status=%d files=%d bytes=%d deduped=%d failures=%d dur=%s remote=%s",
		r.Method, r.URL.Path, status, stats.Files, stats.Bytes, stats.Deduped, failures,
		time.Since(started).Round(time.Microsecond), r.RemoteAddr)
}

// healthResponse is the /healthz body.
type healthResponse struct {
	Status string `json:"status"`
	Uptime string `json:"uptime"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "draining", Uptime: time.Since(s.start).String()})
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Uptime: time.Since(s.start).String()})
}

// AdminReport is the /admin/metrics body: the obs registry dump plus the
// service-level aggregates that exist even without a registry installed.
type AdminReport struct {
	Uptime   string `json:"uptime"`
	Draining bool   `json:"draining"`
	Requests int64  `json:"requests"`
	Rejected int64  `json:"rejected"`
	Files    int64  `json:"files"`
	Deduped  int64  `json:"deduped"`
	// Bypassed counts verdicts the triage router synthesized; StoreHits
	// counts verdicts answered from the on-disk store. This is where store
	// provenance is observable — scan responses deliberately omit it.
	Bypassed  int64      `json:"bypassed"`
	StoreHits int64      `json:"storeHits"`
	Queue     QueueStats `json:"queue"`
	// Cache is the shared dedup LRU's occupancy; nil when the daemon runs
	// without -dedup.
	Cache *core.DedupStats `json:"cache,omitempty"`
	// Store is the on-disk verdict store's state; nil when the daemon runs
	// without -store.
	Store *store.Stats `json:"store,omitempty"`
	// Stages is the cumulative per-stage pipeline breakdown across every
	// request served (durations summed across workers).
	Stages []core.StageStats `json:"stages,omitempty"`
	// Metrics is the obs registry snapshot (counters and histograms).
	Metrics obs.Snapshot `json:"metrics"`
}

// QueueStats describes the job queue on the admin endpoint.
type QueueStats struct {
	// Depth is the number of queued-not-started jobs; Active the jobs
	// being scanned right now; Capacity the queue bound requests bounce off.
	Depth    int   `json:"depth"`
	Active   int64 `json:"active"`
	Capacity int   `json:"capacity"`
}

func (s *Server) handleAdmin(w http.ResponseWriter, r *http.Request) {
	rep := AdminReport{
		Uptime:    time.Since(s.start).String(),
		Draining:  s.draining.Load(),
		Requests:  s.requests.Load(),
		Rejected:  s.rejected.Load(),
		Files:     s.scanned.Load(),
		Deduped:   s.deduped.Load(),
		Bypassed:  s.bypassed.Load(),
		StoreHits: s.storeHits.Load(),
		Queue:     QueueStats{Depth: len(s.jobs), Active: s.active.Load(), Capacity: cap(s.jobs)},
	}
	if st, ok := s.scanner.DedupStats(); ok {
		rep.Cache = &st
	}
	if st, ok := s.scanner.StoreStats(); ok {
		rep.Store = &st
	}
	s.stageMu.Lock()
	rep.Stages = append([]core.StageStats(nil), s.stages...)
	s.stageMu.Unlock()
	if reg := obs.Get(); reg != nil {
		rep.Metrics = reg.Snapshot()
	}
	writeJSON(w, http.StatusOK, rep)
}
