package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRE extracts expectations from testdata sources: a `// want "substr"`
// comment on a line means the suite must report a finding on that line whose
// message contains substr. Multiple quoted strings mean multiple findings.
var wantRE = regexp.MustCompile(`// want (.+)$`)

var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file   string
	line   int
	substr string
}

// loadExpectations scans every .go file of dir for want comments.
func loadExpectations(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []expectation
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
			if len(quoted) == 0 {
				t.Fatalf("%s:%d: want comment with no quoted pattern", path, i+1)
			}
			for _, q := range quoted {
				wants = append(wants, expectation{file: path, line: i + 1, substr: q[1]})
			}
		}
	}
	return wants
}

// runTestdata loads one testdata package and checks the analyzer's findings
// against the want comments: every want must be matched by a finding on its
// line, and every finding must be claimed by a want.
func runTestdata(t *testing.T, pkg string, analyzers ...*Analyzer) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./" + pkg)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l, pkgs, analyzers)
	wants := loadExpectations(t, filepath.Join(root, pkg))

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if strings.Contains(d.Message, w.substr) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected finding containing %q, got none", w.file, w.line, w.substr)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

func TestHotpathNoAlloc(t *testing.T)   { runTestdata(t, "hotpath", HotpathNoAlloc) }
func TestPoolDiscipline(t *testing.T)   { runTestdata(t, "pool", PoolDiscipline) }
func TestObsLiteral(t *testing.T)       { runTestdata(t, "obslit", ObsLiteral) }
func TestKindExhaustive(t *testing.T)   { runTestdata(t, "kind", KindExhaustive) }
func TestGoroutineHygiene(t *testing.T) { runTestdata(t, "goroutine", GoroutineHygiene) }

// TestDirectiveValidation pins the "jslint" diagnostics for malformed ignore
// directives, and that a directive without a reason does not suppress.
func TestDirectiveValidation(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./directives")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l, pkgs, []*Analyzer{HotpathNoAlloc})

	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d: %s: %s", d.Pos.Line, d.Analyzer, firstWords(d.Message, 4)))
	}
	want := []string{
		"9: hotpath-noalloc: make allocates on the",
		"9: jslint: ignore directive needs a",
		"10: hotpath-noalloc: make allocates on the",
		"10: jslint: malformed ignore directive: want",
		"11: hotpath-noalloc: make allocates on the",
		"11: jslint: malformed ignore directive: want",
	}
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("directive diagnostics mismatch:\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

func firstWords(s string, n int) string {
	fields := strings.Fields(s)
	if len(fields) > n {
		fields = fields[:n]
	}
	return strings.Join(fields, " ")
}

// TestLoaderModulePaths pins the canonical package paths the analyzers
// compare against: module packages under the module prefix, the standard
// library under its plain path.
func TestLoaderModulePaths(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath() != "repro" {
		t.Fatalf("module path = %q, want repro", l.ModulePath())
	}
	pkgs, err := l.Load("./goroutine")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/goroutine" {
		t.Fatalf("loaded %v, want [repro/goroutine]", pkgs)
	}
	sync2, err := l.Import("sync")
	if err != nil {
		t.Fatal(err)
	}
	if sync2.Path() != "sync" {
		t.Fatalf("sync loaded under path %q", sync2.Path())
	}
	// Type identity must hold across packages: the sync.WaitGroup seen while
	// type-checking testdata is the same object a second Import returns.
	sync3, err := l.Import("sync")
	if err != nil {
		t.Fatal(err)
	}
	if sync2 != sync3 {
		t.Fatal("repeated Import returned a distinct *types.Package")
	}
}

// TestAnalyzersListed pins the suite's composition and naming.
func TestAnalyzersListed(t *testing.T) {
	want := []string{
		"hotpath-noalloc",
		"pool-discipline",
		"obs-literal",
		"kind-exhaustive",
		"goroutine-hygiene",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
	}
}
