package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader is a small source-mode package loader and type-checker built
// from the standard library alone (the module is dependency-free, so
// golang.org/x/tools/go/packages is not available). It resolves import paths
// in two worlds: paths under the module prefix map to directories inside the
// module, everything else is located through go/build against GOROOT (with
// cgo disabled, so the pure-Go file sets of net, os/user, etc. are selected).
// Every package — including the standard-library closure — is parsed and
// type-checked from source with go/types; results are cached per directory
// so each package is checked exactly once and type identity is preserved
// across the whole analysis.
//
// Test files are never loaded: the analyzers enforce production invariants,
// and tests allocate, spawn, and improvise freely by design.

// Package is one loaded, type-checked module package ready for analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the package's directory.
	Dir string
	// Fset is the loader-wide file set all positions resolve through.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's fact tables for Files.
	Info *types.Info
}

// Loader loads and type-checks packages from source.
type Loader struct {
	Fset *token.FileSet

	ctxt       build.Context
	moduleDir  string
	modulePath string

	// byDir caches one load per package directory (the canonical key:
	// vendored import paths and the module prefix both funnel to a dir).
	byDir map[string]*loadEntry
}

type loadEntry struct {
	pkg     *Package // nil for non-module (dependency-only) packages
	tpkg    *types.Package
	err     error
	loading bool
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	moduleDir, modulePath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false
	// The loader resolves only module-internal and GOROOT packages; an
	// inherited GOPATH must not leak third-party trees into the analysis.
	ctxt.GOPATH = ""
	return &Loader{
		Fset:       token.NewFileSet(),
		ctxt:       ctxt,
		moduleDir:  moduleDir,
		modulePath: modulePath,
		byDir:      make(map[string]*loadEntry),
	}, nil
}

// ModuleDir returns the module root directory.
func (l *Loader) ModuleDir() string { return l.moduleDir }

// ModulePath returns the module's import path prefix.
func (l *Loader) ModulePath() string { return l.modulePath }

// findModule walks up from dir to the enclosing go.mod and reads its module
// path.
func findModule(dir string) (moduleDir, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load resolves the given patterns ("./...", "./internal/features", or plain
// import paths under the module) and returns the matched packages,
// type-checked with full info, sorted by import path. Directories named
// testdata and hidden directories are skipped by "..." expansion, matching
// the go tool.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "..." || pat == "./...":
			expanded, err := l.expandDir(l.moduleDir)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			expanded, err := l.expandDir(l.resolvePatternDir(root))
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		default:
			add(l.resolvePatternDir(pat))
		}
	}

	var pkgs []*Package
	for _, dir := range dirs {
		entry := l.loadDir(dir)
		if entry.err != nil {
			if _, ok := entry.err.(*build.NoGoError); ok && len(dirs) > 1 {
				continue
			}
			return nil, fmt.Errorf("lint: %s: %w", dir, entry.err)
		}
		if entry.pkg != nil {
			pkgs = append(pkgs, entry.pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// resolvePatternDir maps one non-wildcard pattern to a directory.
func (l *Loader) resolvePatternDir(pat string) string {
	switch {
	case pat == "." || pat == "./":
		return l.moduleDir
	case strings.HasPrefix(pat, "./"):
		return filepath.Join(l.moduleDir, filepath.FromSlash(pat[2:]))
	case pat == l.modulePath:
		return l.moduleDir
	case strings.HasPrefix(pat, l.modulePath+"/"):
		return filepath.Join(l.moduleDir, filepath.FromSlash(pat[len(l.modulePath)+1:]))
	case filepath.IsAbs(pat):
		return pat
	default:
		return filepath.Join(l.moduleDir, filepath.FromSlash(pat))
	}
}

// expandDir lists every package directory under root, skipping testdata,
// hidden, and underscore-prefixed directories.
func (l *Loader) expandDir(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := l.ctxt.ImportDir(path, 0); err == nil {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// importPathForDir derives the canonical import path of dir: module-relative
// for module packages, GOROOT/src-relative for the standard library (with the
// std vendor prefix stripped, so sync is "sync" and the vendored
// golang.org/x/net keeps its public path). Analyzers compare package paths
// against literals like "sync" and "context"; the type-checked packages must
// carry those canonical names.
func (l *Loader) importPathForDir(dir string) string {
	if rel, err := filepath.Rel(l.moduleDir, dir); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.modulePath
		}
		return l.modulePath + "/" + filepath.ToSlash(rel)
	}
	src := filepath.Join(l.ctxt.GOROOT, "src")
	if rel, err := filepath.Rel(src, dir); err == nil && !strings.HasPrefix(rel, "..") {
		p := filepath.ToSlash(rel)
		if rest, ok := strings.CutPrefix(p, "vendor/"); ok {
			return rest
		}
		return p
	}
	return dir
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.moduleDir, 0)
}

// ImportFrom implements types.ImporterFrom; go/types calls it with the
// directory of the importing package, which lets go/build resolve the
// standard library's vendored dependencies.
func (l *Loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	var dir string
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		dir = filepath.Join(l.moduleDir, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")))
	} else {
		bp, err := l.ctxt.Import(path, srcDir, build.FindOnly)
		if err != nil {
			return nil, err
		}
		if !bp.Goroot {
			return nil, fmt.Errorf("lint: import %q resolves outside the module and GOROOT (%s)", path, bp.Dir)
		}
		dir = bp.Dir
	}
	entry := l.loadDir(dir)
	if entry.err != nil {
		return nil, entry.err
	}
	return entry.tpkg, nil
}

// loadDir parses and type-checks the package in dir, caching the result.
// Module packages keep their syntax and full type info for analysis;
// dependency packages outside the module are checked for their exported API
// only.
func (l *Loader) loadDir(dir string) *loadEntry {
	if e, ok := l.byDir[dir]; ok {
		if e.loading {
			return &loadEntry{err: fmt.Errorf("import cycle through %s", dir)}
		}
		return e
	}
	e := &loadEntry{loading: true}
	l.byDir[dir] = e
	defer func() { e.loading = false }()

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		e.err = err
		return e
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			e.err = err
			return e
		}
		files = append(files, f)
	}

	inModule := strings.HasPrefix(dir, l.moduleDir+string(filepath.Separator)) || dir == l.moduleDir
	var info *types.Info
	if inModule {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
	}

	importPath := l.importPathForDir(dir)
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
		Sizes:    types.SizesFor(l.ctxt.Compiler, l.ctxt.GOARCH),
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, terr := range typeErrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-i))
				break
			}
			msgs = append(msgs, terr.Error())
		}
		e.err = fmt.Errorf("type errors in %s:\n\t%s", importPath, strings.Join(msgs, "\n\t"))
		return e
	}
	if err != nil {
		e.err = err
		return e
	}
	e.tpkg = tpkg
	if inModule {
		e.pkg = &Package{
			Path:  importPath,
			Dir:   dir,
			Fset:  l.Fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		}
	}
	return e
}
