package lint

import (
	"go/ast"
	"go/types"
)

// PoolDiscipline enforces the sync.Pool contract the pooled hot-path
// extractors rely on: every Get must be paired with a Put on the same pool
// reachable on every return path of the function, and the pooled value must
// not outlive the function (returned, stored outside a local, sent on a
// channel, or captured by a non-deferred closure).
//
// The reachability check is lexical, not a full CFG: a defer Put satisfies
// every path; otherwise each return statement after the Get must have a Put
// between the Get and itself. A Put inside a conditional can therefore
// satisfy a following return — the analyzer trades that imprecision for
// zero false positives on the deliberate no-defer pattern the hot paths use
// (a deferred closure would itself allocate; see features.ngramFeatures).
var PoolDiscipline = &Analyzer{
	Name: "pool-discipline",
	Doc:  "sync.Pool.Get must have a Put reachable on all return paths, and the pooled value must not escape",
	Run:  runPool,
}

func runPool(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolFunc(pass, fd)
		}
	}
}

// poolCall is one Get or Put call site on a pool expression.
type poolCall struct {
	call     *ast.CallExpr
	poolExpr string // canonical receiver text, e.g. "kindWalkerPool"
	deferred bool
	inFunc   ast.Node // nearest enclosing FuncDecl/FuncLit
}

func checkPoolFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	parents := buildParents(fd)

	var gets, puts []poolCall
	var returns []*ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ReturnStmt:
			if parents.enclosingFunc(v) == ast.Node(fd) {
				returns = append(returns, v)
			}
		case *ast.CallExpr:
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
				return true
			}
			if !isSyncPool(info.TypeOf(sel.X)) {
				return true
			}
			pc := poolCall{
				call:     v,
				poolExpr: types.ExprString(sel.X),
				deferred: isDeferred(parents, v),
				inFunc:   hostFunc(parents, v, fd),
			}
			if sel.Sel.Name == "Get" {
				gets = append(gets, pc)
			} else {
				puts = append(puts, pc)
			}
		}
		return true
	})

	for _, get := range gets {
		if get.inFunc != ast.Node(fd) {
			continue // nested function literals get their own FuncDecl-level pass via closures below
		}
		var samePool []poolCall
		for _, put := range puts {
			if put.poolExpr == get.poolExpr && put.inFunc == get.inFunc {
				samePool = append(samePool, put)
			}
		}
		if len(samePool) == 0 {
			pass.Reportf(get.call.Pos(), "%s.Get has no matching %s.Put in this function", get.poolExpr, get.poolExpr)
		} else {
			deferOK := false
			for _, put := range samePool {
				if put.deferred {
					deferOK = true
				}
			}
			if !deferOK {
				for _, ret := range returns {
					if ret.Pos() < get.call.Pos() {
						continue
					}
					covered := false
					for _, put := range samePool {
						if put.call.Pos() > get.call.Pos() && put.call.End() < ret.Pos() {
							covered = true
							break
						}
					}
					if !covered {
						pass.Reportf(ret.Pos(), "return without %s.Put of the value obtained at line %d", get.poolExpr, pass.Pkg.Fset.Position(get.call.Pos()).Line)
					}
				}
			}
		}
		checkPoolEscape(pass, fd, parents, get)
	}
}

// checkPoolEscape flags uses of the Get-bound variable that let the pooled
// value outlive the function.
func checkPoolEscape(pass *Pass, fd *ast.FuncDecl, parents parentMap, get poolCall) {
	info := pass.Pkg.Info

	// Find the variable the Get result is bound to: climb through a type
	// assertion to an assignment with a single identifier target.
	n := ast.Node(get.call)
	for {
		p := parents[n]
		if _, ok := p.(*ast.TypeAssertExpr); ok {
			n = p
			continue
		}
		break
	}
	assign, ok := parents[n].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 {
		return
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || info.Uses[use] != obj {
			return true
		}
		switch p := parents[use].(type) {
		case *ast.ReturnStmt:
			pass.Reportf(use.Pos(), "pooled value %s escapes: returned from the function that got it", id.Name)
		case *ast.SendStmt:
			if p.Value == ast.Node(use) {
				pass.Reportf(use.Pos(), "pooled value %s escapes: sent on a channel", id.Name)
			}
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if rhs != ast.Node(use) || i >= len(p.Lhs) {
					continue
				}
				switch lhs := p.Lhs[i].(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					pass.Reportf(use.Pos(), "pooled value %s escapes: stored outside the function's locals", id.Name)
				case *ast.Ident:
					if o := info.Uses[lhs]; o != nil && o.Parent() == pass.Pkg.Types.Scope() {
						pass.Reportf(use.Pos(), "pooled value %s escapes: stored in package-level %s", id.Name, lhs.Name)
					}
				}
			}
		}
		// Captured by a closure that is not a deferred cleanup.
		if host := hostFunc(parents, use, fd); host != ast.Node(fd) {
			if lit, ok := host.(*ast.FuncLit); ok && !isDeferred(parents, lit) {
				pass.Reportf(use.Pos(), "pooled value %s escapes: captured by a non-deferred closure", id.Name)
			}
		}
		return true
	})
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isDeferred reports whether n is (part of) a defer statement: the deferred
// call itself or inside a deferred function literal.
func isDeferred(parents parentMap, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		if _, ok := p.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// hostFunc returns the innermost function (FuncLit or the given FuncDecl)
// that contains n.
func hostFunc(parents parentMap, n ast.Node, fd *ast.FuncDecl) ast.Node {
	if f := parents.enclosingFunc(n); f != nil {
		return f
	}
	return fd
}
