// Package lint is the project-native static-analysis suite behind
// cmd/jslint. It enforces, at compile time, the invariants the pipeline
// otherwise guards only with runtime gates: the zero-allocation hot paths
// from the allocation overhaul, sync.Pool Get/Put discipline, the manifest
// of obs metric names, exhaustiveness of ast.Kind dispatch, and the
// goroutine hygiene the batch scanner's cancellation machinery depends on.
//
// The suite follows the paper's own thesis — static signals beat sampling:
// a benchmark gate fires only after a regression lands and only on the
// inputs it happens to run, while these analyzers prove the property for
// every call site on every build.
//
// Two comment directives drive it:
//
//	//jslint:hotpath
//	    in a function's doc comment marks it as a zero-allocation hot path;
//	    hotpath-noalloc then rejects heap-allocating constructs in its body.
//
//	//jslint:ignore <analyzer> <reason>
//	    suppresses that analyzer's findings on the directive's line (or, when
//	    the directive stands alone on its line, on the line below). The
//	    reason is mandatory: a suppression without a recorded rationale is
//	    itself a finding.
//
//	//jslint:enum
//	    in a type declaration's doc comment marks an integer constant set as
//	    a closed enum; kind-exhaustive then requires switches and dense
//	    tables over it to cover every constant or carry an explicit default.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in output and //jslint:ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run reports findings on pass.Pkg via pass.Reportf.
	Run func(pass *Pass)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Enums maps //jslint:enum-marked types (from every loaded module
	// package, not just this one) to their declared constant names in
	// declaration order.
	Enums *EnumIndex

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotpathNoAlloc,
		PoolDiscipline,
		ObsLiteral,
		KindExhaustive,
		GoroutineHygiene,
	}
}

// Run applies analyzers to pkgs, resolves //jslint:ignore suppressions, and
// returns the surviving diagnostics sorted by position. Malformed directives
// are reported under the analyzer name "jslint".
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{"jslint": true}
	for _, a := range Analyzers() { // full suite: a partial run still validates directives
		known[a.Name] = true
	}

	enums := BuildEnumIndex(l)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Enums: enums, diags: &diags}
			a.Run(pass)
		}
	}

	// Collect suppressions (and directive problems) across the analyzed
	// packages.
	type ignoreKey struct {
		file string
		line int
		name string
	}
	ignores := make(map[ignoreKey]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//jslint:ignore")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) == 0 || !known[fields[0]] {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: "jslint",
							Message:  fmt.Sprintf("malformed ignore directive: want //jslint:ignore <analyzer> <reason> with analyzer one of %s", strings.Join(sortedNames(known), ", ")),
						})
						continue
					}
					if len(fields) < 2 {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: "jslint",
							Message:  "ignore directive needs a reason: //jslint:ignore " + fields[0] + " <reason>",
						})
						continue
					}
					ignores[ignoreKey{pos.Filename, pos.Line, fields[0]}] = true
					// A directive alone on its line covers the next line.
					if startsLine(pkg.Fset, f, c) {
						ignores[ignoreKey{pos.Filename, pos.Line + 1, fields[0]}] = true
					}
				}
			}
		}
	}

	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "jslint" && ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		if n != "jslint" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// startsLine reports whether comment c is the first token on its line (i.e.
// a standalone directive rather than a trailing one).
func startsLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	// A trailing directive shares its line with code that starts earlier on
	// the same line; scan the file's declarations for any node on that line
	// starting before the comment.
	onLine := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || onLine {
			return false
		}
		p := fset.Position(n.Pos())
		if p.Line > pos.Line {
			return false
		}
		end := fset.Position(n.End())
		if end.Line < pos.Line {
			return false
		}
		if p.Line == pos.Line && p.Column < pos.Column {
			onLine = true
			return false
		}
		return true
	})
	return !onLine
}

// hasDirective reports whether the doc comment carries //jslint:<name>.
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == "//jslint:"+name || strings.HasPrefix(text, "//jslint:"+name+" ") {
			return true
		}
	}
	return false
}

// parentMap records each node's syntactic parent within a subtree.
type parentMap map[ast.Node]ast.Node

func buildParents(root ast.Node) parentMap {
	parents := make(parentMap)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// enclosingFunc returns the nearest enclosing function literal or
// declaration of n, or nil.
func (pm parentMap) enclosingFunc(n ast.Node) ast.Node {
	for p := pm[n]; p != nil; p = pm[p] {
		switch p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return p
		}
	}
	return nil
}
