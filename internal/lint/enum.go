package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// EnumIndex records every //jslint:enum-marked type across the loaded
// module packages, with its declared constants.
type EnumIndex struct {
	// enums maps the marked type's *types.TypeName to its constants.
	enums map[*types.TypeName][]*types.Const
}

// BuildEnumIndex scans every module package the loader has seen for type
// declarations carrying //jslint:enum and collects their constants. The
// index spans packages, so a switch in internal/features over
// ast.Kind (declared in internal/js/ast) is checked against the constants
// of the declaring package.
func BuildEnumIndex(l *Loader) *EnumIndex {
	idx := &EnumIndex{enums: make(map[*types.TypeName][]*types.Const)}
	if l == nil {
		return idx
	}
	for _, entry := range l.byDir {
		if entry.pkg == nil {
			continue
		}
		idx.addPackage(entry.pkg)
	}
	return idx
}

func (idx *EnumIndex) addPackage(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !(hasDirective(gd.Doc, "enum") || hasDirective(ts.Doc, "enum")) {
					continue
				}
				obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				var consts []*types.Const
				scope := pkg.Types.Scope()
				for _, name := range scope.Names() {
					c, ok := scope.Lookup(name).(*types.Const)
					if ok && types.Identical(c.Type(), obj.Type()) {
						consts = append(consts, c)
					}
				}
				sort.Slice(consts, func(i, j int) bool {
					vi, _ := constant.Int64Val(consts[i].Val())
					vj, _ := constant.Int64Val(consts[j].Val())
					return vi < vj
				})
				idx.enums[obj] = consts
			}
		}
	}
}

// lookup returns the marked enum's constants when t is (or points to) a
// marked enum type.
func (idx *EnumIndex) lookup(t types.Type) (*types.TypeName, []*types.Const, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil, false
	}
	consts, ok := idx.enums[named.Obj()]
	return named.Obj(), consts, ok
}

// required returns the constants a switch or dense table must cover: every
// declared constant except the zero value and the *Count/*Invalid
// sentinels. includeZero adds the zero value back (dense tables index it).
func requiredConsts(consts []*types.Const, includeZero bool) []*types.Const {
	var out []*types.Const
	for _, c := range consts {
		if strings.HasSuffix(c.Name(), "Count") || strings.HasSuffix(c.Name(), "Invalid") {
			continue
		}
		if v, ok := constant.Int64Val(c.Val()); ok && v == 0 && !includeZero {
			continue
		}
		out = append(out, c)
	}
	return out
}

// KindExhaustive checks that switches over //jslint:enum-marked types
// (ast.Kind foremost) and dense kind-indexed tables cover every constant or
// carry an explicit default. It is the lockstep guard for the interned-kind
// layer from the allocation overhaul: adding a Kind without updating every
// dispatch site becomes a compile-time finding instead of a silent
// misclassification.
//
// Two shapes are checked:
//   - switch statements whose tag is a marked enum: without a default
//     clause, every non-sentinel constant (names ending in Count or Invalid
//     are sentinels) must appear as a case;
//   - composite literals of array type whose length is an enum constant
//     (e.g. [KindCount]string): keyed entries must cover every non-sentinel
//     constant, and unkeyed literals must supply exactly length elements.
var KindExhaustive = &Analyzer{
	Name: "kind-exhaustive",
	Doc:  "switches and dense tables over //jslint:enum types must be exhaustive or carry a default",
	Run:  runKindExhaustive,
}

func runKindExhaustive(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SwitchStmt:
				checkEnumSwitch(pass, v)
			case *ast.CompositeLit:
				checkEnumTable(pass, v)
			}
			return true
		})
	}
	_ = info
}

func checkEnumSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	t := pass.Pkg.Info.TypeOf(sw.Tag)
	if t == nil {
		return
	}
	tn, consts, ok := pass.Enums.lookup(t)
	if !ok {
		return
	}
	covered := make(map[int64]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: any coverage is fine
		}
		for _, e := range cc.List {
			if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
				if v, ok := constant.Int64Val(tv.Value); ok {
					covered[v] = true
				}
			}
		}
	}
	var missing []string
	for _, c := range requiredConsts(consts, false) {
		if v, ok := constant.Int64Val(c.Val()); ok && !covered[v] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(), "switch over %s has no default and is missing %s",
			tn.Name(), summarizeMissing(missing))
	}
}

func checkEnumTable(pass *Pass, cl *ast.CompositeLit) {
	t := pass.Pkg.Info.TypeOf(cl)
	if t == nil {
		return
	}
	arr, ok := t.Underlying().(*types.Array)
	if !ok {
		return
	}
	// The literal's length must be spelled as an enum constant
	// ([KindCount]T), not a plain number: that is what marks the table as
	// kind-indexed.
	at, ok := cl.Type.(*ast.ArrayType)
	if !ok || at.Len == nil {
		return
	}
	lenTV, ok := pass.Pkg.Info.Types[at.Len]
	if !ok || lenTV.Type == nil {
		return
	}
	tn, consts, ok := pass.Enums.lookup(lenTV.Type)
	if !ok {
		return
	}

	keyed := false
	covered := make(map[int64]bool)
	next := int64(0)
	for _, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			keyed = true
			if tv, ok := pass.Pkg.Info.Types[kv.Key]; ok && tv.Value != nil {
				if v, ok := constant.Int64Val(tv.Value); ok {
					covered[v] = true
					next = v + 1
				}
			}
			continue
		}
		covered[next] = true
		next++
	}

	if !keyed {
		if n := int64(len(cl.Elts)); n > 0 && n < arr.Len() {
			pass.Reportf(cl.Pos(), "%s-indexed table has %d of %d entries; use keyed entries or fill the table",
				tn.Name(), n, arr.Len())
		}
		return
	}
	var missing []string
	for _, c := range requiredConsts(consts, true) {
		if v, ok := constant.Int64Val(c.Val()); ok && !covered[v] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(cl.Pos(), "%s-indexed table is missing %s", tn.Name(), summarizeMissing(missing))
	}
}

func summarizeMissing(missing []string) string {
	sort.Strings(missing)
	if len(missing) > 5 {
		return fmt.Sprintf("%s and %d more", strings.Join(missing[:5], ", "), len(missing)-5)
	}
	return strings.Join(missing, ", ")
}
