package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"

	"repro/internal/obs"
)

// obsPath is the import path of the observability package whose metric-name
// arguments the analyzer checks.
const obsPath = "repro/internal/obs"

// obsNameFuncs are the obs entry points whose first argument is a metric
// name.
var obsNameFuncs = map[string]bool{
	"Add":             true,
	"Observe":         true,
	"ObserveDuration": true,
	"Time":            true,
}

// metricNameRE is the manifest grammar: dotted lowercase, two or more
// segments, underscores allowed after the first character of a segment.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

// ObsLiteral pins the -metrics surface: every obs.Add/obs.Observe/obs.Time
// name must be a dotted-lowercase string literal registered in the manifest
// (internal/obs/metrics.go), so the full metric vocabulary is greppable and
// cannot drift from its documentation. A name may also be an index into a
// package-level array/slice of string literals (the batch scanner's
// per-stage table) — each element is then checked against the grammar and
// the manifest.
var ObsLiteral = &Analyzer{
	Name: "obs-literal",
	Doc:  "obs metric names must be dotted-lowercase literals registered in internal/obs/metrics.go",
	Run:  runObsLiteral,
}

func runObsLiteral(pass *Pass) {
	if pass.Pkg.Path == obsPath {
		return // the obs package's own internals record through unqualified calls
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !obsNameFuncs[sel.Sel.Name] {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[pkgID].(*types.PkgName)
			if !ok || pn.Imported().Path() != obsPath {
				return true
			}
			checkMetricArg(pass, call.Args[0])
			return true
		})
	}
}

// checkMetricArg validates one metric-name argument: a string literal, a
// string constant, or an index into a package-level table of string
// literals.
func checkMetricArg(pass *Pass, arg ast.Expr) {
	info := pass.Pkg.Info

	// Constant-folded strings (literals and named constants).
	if tv, ok := info.Types[arg]; ok && tv.Value != nil {
		if s, err := strconv.Unquote(tv.Value.ExactString()); err == nil {
			checkMetricName(pass, arg.Pos(), s)
			return
		}
	}

	// Index into a package-level string table: every element must pass.
	if idx, ok := arg.(*ast.IndexExpr); ok {
		if elems, ok := resolveStringTable(pass, idx.X); ok {
			for _, el := range elems {
				checkMetricName(pass, el.pos, el.val)
			}
			return
		}
	}

	pass.Reportf(arg.Pos(), "obs metric name must be a string literal (or an index into a package-level table of string literals) registered in internal/obs/metrics.go")
}

type stringElem struct {
	pos token.Pos
	val string
}

// resolveStringTable resolves e to a package-level var declared as an
// array/slice composite literal whose elements are all string literals.
func resolveStringTable(pass *Pass, e ast.Expr) ([]stringElem, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.Pkg.Info.Uses[id]
	if obj == nil || obj.Parent() != pass.Pkg.Types.Scope() {
		return nil, false
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if pass.Pkg.Info.Defs[name] != obj || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						return nil, false
					}
					var elems []stringElem
					for _, el := range cl.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							el = kv.Value
						}
						tv, ok := pass.Pkg.Info.Types[el]
						if !ok || tv.Value == nil {
							return nil, false
						}
						s, err := strconv.Unquote(tv.Value.ExactString())
						if err != nil {
							return nil, false
						}
						elems = append(elems, stringElem{pos: el.Pos(), val: s})
					}
					return elems, true
				}
			}
		}
	}
	return nil, false
}

func checkMetricName(pass *Pass, pos token.Pos, name string) {
	if !metricNameRE.MatchString(name) {
		pass.Reportf(pos, "obs metric name %q is not dotted-lowercase (want %s)", name, metricNameRE.String())
		return
	}
	if !obs.KnownMetric(name) {
		pass.Reportf(pos, "obs metric name %q is not registered in the internal/obs/metrics.go manifest", name)
	}
}
