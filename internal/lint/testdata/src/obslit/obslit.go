// Package obslit exercises the obs-literal analyzer. Positive names come
// from the real manifest compiled into the analyzer (internal/obs/metrics.go
// of the host module).
package obslit

import (
	"repro/internal/obs"
)

// stageNames is the sanctioned table shape: package-level, all string
// literals, every element a registered metric name.
var stageNames = [...]string{
	"scan.stage.parse",
	"scan.stage.flow",
}

// badTable has one unregistered element.
var badTable = []string{
	"scan.stage.parse",
	"scan.stage.bogus", // want "not registered"
}

const goodName = "parse.files"

func record(stage int, names []string) {
	obs.Add("parse.files", 1)
	obs.Add(goodName, 1)
	obs.ObserveDuration(stageNames[stage], 5)
	obs.ObserveDuration(badTable[stage], 5)
	defer obs.Time("flow.build")()
	obs.Observe("parse.file_bytes", obs.UnitBytes, 10)

	obs.Add("not.in.manifest", 1)        // want "not registered"
	obs.Add("NotLowercase", 1)           // want "not dotted-lowercase"
	obs.Add("plain", 1)                  // want "not dotted-lowercase"
	obs.Add("scan.stage."+names[0], 1)   // want "must be a string literal"
	obs.ObserveDuration(names[stage], 5) // want "must be a string literal"
}
