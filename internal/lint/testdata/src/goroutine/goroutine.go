// Package goroutine exercises the goroutine-hygiene analyzer.
package goroutine

import (
	"context"
	"sync"
)

func work(i int) int { return i * i }

// wgPool is the sanctioned worker-pool shape: Add before go, Done inside.
func wgPool(n int) {
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// closeDrain signals through a channel close.
func closeDrain() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = work(1)
	}()
	return done
}

// sendDrain signals through a result send.
func sendDrain() chan int {
	out := make(chan int, 1)
	go func() {
		out <- work(2)
	}()
	return out
}

func named() {
	go namedWorker() // want "named function is not tied to a tracked drain"
}

func namedWorker() {}

func fireAndForget() {
	go func() { // want "no tracked drain"
		_ = work(3)
	}()
}

func missingAdd() {
	var wg sync.WaitGroup
	go func() { // want "no wg.Add precedes the go statement"
		defer wg.Done()
	}()
	wg.Wait()
}

// feeder is context-aware: its sends must be select-guarded.
func feeder(ctx context.Context, n int) chan int {
	out := make(chan int)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			select {
			case out <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

func badFeeder(ctx context.Context, n int) chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for i := 0; i < n; i++ {
			out <- i // want "must sit in a select with a cancellation receive"
		}
	}()
	return out
}

// plainSend has no context parameter: bare sends are a fire-and-join pool's
// prerogative.
func plainSend(n int) {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
}
