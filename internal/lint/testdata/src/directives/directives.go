// Package directives holds deliberately malformed //jslint:ignore directives;
// the harness asserts the exact "jslint" diagnostics they produce (want
// comments cannot share a line with a directive, so this package is checked
// by explicit expectations instead).
package directives

//jslint:hotpath
func bad() {
	_ = make([]byte, 1) //jslint:ignore hotpath-noalloc
	_ = make([]byte, 2) //jslint:ignore no-such-analyzer because reasons
	_ = make([]byte, 3) //jslint:ignore
}
