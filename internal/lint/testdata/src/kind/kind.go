// Package kind exercises the kind-exhaustive analyzer over a
// //jslint:enum-marked constant set.
package kind

// Color is a closed enum in the shape of the pipeline's ast.Kind.
//
//jslint:enum
type Color uint8

// The color space. ColorInvalid and ColorCount are sentinels: switches need
// not name them.
const (
	ColorInvalid Color = iota
	ColorRed
	ColorGreen
	ColorBlue
	ColorCount
)

// Shade is an ordinary type: switches over it are not checked.
type Shade uint8

// Shades.
const (
	ShadeLight Shade = iota
	ShadeDark
)

func full(c Color) int {
	switch c {
	case ColorRed:
		return 1
	case ColorGreen:
		return 2
	case ColorBlue:
		return 3
	}
	return 0
}

func defaulted(c Color) int {
	switch c {
	case ColorRed:
		return 1
	default:
		return 0
	}
}

func missing(c Color) int {
	switch c { // want "missing ColorBlue, ColorGreen"
	case ColorRed:
		return 1
	}
	return 0
}

func unchecked(s Shade) int {
	switch s {
	case ShadeLight:
		return 1
	}
	return 0
}

// colorNames is the dense-table shape the interned-kind layer uses.
var colorNames = [ColorCount]string{
	ColorInvalid: "invalid",
	ColorRed:     "red",
	ColorGreen:   "green",
	ColorBlue:    "blue",
}

var shortNames = [ColorCount]string{ // want "missing ColorBlue, ColorGreen"
	ColorInvalid: "invalid",
	ColorRed:     "red",
}

var sparseUnkeyed = [ColorCount]string{"invalid", "red"} // want "has 2 of 4 entries"

func use(c Color) string { return colorNames[c] + shortNames[c] + sparseUnkeyed[c] }
