// Package pool exercises the pool-discipline analyzer.
package pool

import "sync"

type buffer struct{ b []byte }

var bufPool = sync.Pool{New: func() interface{} { return new(buffer) }}

var stash *buffer

// getPut is the canonical clean shape: Get, use, Put on the way out of every
// path, no defer (the hot paths avoid the deferred-closure allocation).
func getPut(n int) int {
	buf := bufPool.Get().(*buffer)
	if n < 0 {
		bufPool.Put(buf)
		return 0
	}
	buf.b = buf.b[:0]
	bufPool.Put(buf)
	return len(buf.b)
}

// deferPut satisfies every return path with a single deferred Put.
func deferPut(n int) int {
	buf := bufPool.Get().(*buffer)
	defer bufPool.Put(buf)
	if n < 0 {
		return 0
	}
	return n
}

func noPut() {
	buf := bufPool.Get().(*buffer) // want "bufPool.Get has no matching bufPool.Put"
	_ = buf
}

func missedPath(n int) int {
	buf := bufPool.Get().(*buffer)
	if n < 0 {
		return 0 // want "return without bufPool.Put"
	}
	bufPool.Put(buf)
	return n
}

func returned() *buffer {
	buf := bufPool.Get().(*buffer)
	bufPool.Put(buf)
	return buf // want "pooled value buf escapes: returned"
}

func stored() {
	buf := bufPool.Get().(*buffer)
	stash = buf // want "pooled value buf escapes: stored in package-level stash"
	bufPool.Put(buf)
}

func sent(ch chan *buffer) {
	buf := bufPool.Get().(*buffer)
	ch <- buf // want "pooled value buf escapes: sent on a channel"
	bufPool.Put(buf)
}

func captured() func() {
	buf := bufPool.Get().(*buffer)
	f := func() { buf.b = nil } // want "pooled value buf escapes: captured by a non-deferred closure"
	bufPool.Put(buf)
	return f
}
