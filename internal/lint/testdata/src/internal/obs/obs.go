// Package obs is a shrunk stand-in for the real repro/internal/obs: the
// obs-literal analyzer matches call sites by import path, so the testdata
// module declares itself "module repro" and ships this stub at the same
// relative location. Metric names are still validated against the real
// manifest compiled into the analyzer.
package obs

// Unit tags what a histogram's values measure.
type Unit string

// Histogram units.
const (
	UnitNanoseconds Unit = "ns"
	UnitBytes       Unit = "bytes"
	UnitCount       Unit = "count"
)

// Add increments the named counter.
func Add(name string, n int64) { _, _ = name, n }

// Observe records one histogram value.
func Observe(name string, unit Unit, v int64) { _, _, _ = name, unit, v }

// ObserveDuration records a nanosecond histogram value.
func ObserveDuration(name string, d int64) { _, _ = name, d }

// Time starts a duration measurement.
func Time(name string) func() {
	_ = name
	return func() {}
}
