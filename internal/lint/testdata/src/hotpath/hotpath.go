// Package hotpath exercises the hotpath-noalloc analyzer: each `want`
// comment marks a line the analyzer must flag, and unmarked code must stay
// clean.
package hotpath

type point struct{ x, y int }

type reader interface{ read() int }

// clean is the shape the analyzer must accept: value locals, loops, amortized
// append into a caller-owned buffer, map insertion, and calls with concrete
// arguments.
//
//jslint:hotpath
func clean(xs []int, buf []int, m map[int]int) ([]int, int) {
	s := 0
	for _, x := range xs {
		s += x
		buf = append(buf, x)
		m[x] = s
	}
	p := point{x: s, y: s}
	return buf, p.x + p.y
}

// unannotated may allocate freely.
func unannotated() []int {
	return []int{1, 2, 3}
}

//jslint:hotpath
func literals() {
	_ = []int{1, 2, 3}   // want "slice literal allocates"
	_ = map[string]int{} // want "map literal allocates"
	_ = &point{x: 1}     // want "literal escapes to the heap"
	_ = make([]byte, 8)  // want "make allocates"
	_ = new(point)       // want "new allocates"
	f := func() {}       // want "function literal allocates a closure"
	f()
	go f() // want "go statement allocates a goroutine"
}

//jslint:hotpath
func conversions(b []byte, r rune, s string) {
	_ = string(b)    // want "conversion to string allocates"
	_ = string(r)    // want "conversion to string allocates"
	_ = string("ok") // constant conversion is free
	_ = []byte(s)    // want "conversion allocates"
	_ = []rune(s)    // want "conversion allocates"
	_ = s + "!"      // want "string concatenation allocates"
}

func variadic(xs ...int) int { return len(xs) }

func sink(v interface{}) { _ = v }

//jslint:hotpath
func calls(xs []int, p *point) {
	_ = variadic(1, 2) // want "variadic call allocates its argument slice"
	_ = variadic(xs...)
	sink(p) // pointers do not box
	sink(4) // want "boxes a int on the heap"
}

//jslint:hotpath
func boxing(p point, pp *point) (v interface{}) {
	var i interface{} = p // want "boxes a point on the heap"
	_ = i
	var j interface{} = pp // pointer-shaped: no boxing
	_ = j
	return p // want "boxes a point on the heap"
}

//jslint:hotpath
func methodValue(r reader) func() int {
	f := r.read // want "method value read allocates a bound closure"
	_ = r.read()
	return f
}

//jslint:hotpath
func suppressed() {
	_ = make([]byte, 1) //jslint:ignore hotpath-noalloc pool warm-up only
	//jslint:ignore hotpath-noalloc standalone directive covers the next line
	_ = make([]byte, 2)
}
