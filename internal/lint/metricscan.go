package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// MetricUse is one metric name recorded somewhere in the tree, with the
// instrument kind implied by the call that records it.
type MetricUse struct {
	Name string
	Kind string   // "counter" or "histogram"
	Unit obs.Unit // histograms only
	Pos  token.Position
}

// ScanMetricUses walks the module tree syntactically (no type checking — it
// must stay fast enough to run inside a test) and collects every metric name
// recorded through the obs package. Names are resolved from string literals,
// same-package string constants, and package-level tables of string literals;
// any obs call whose name cannot be resolved that way is returned as an
// error, which is the same property the obs-literal analyzer enforces with
// full type information.
func ScanMetricUses(moduleDir string) ([]MetricUse, []error) {
	var uses []MetricUse
	var errs []error
	fset := token.NewFileSet()

	err := filepath.WalkDir(moduleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != moduleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		u, e := scanDirMetricUses(fset, path)
		uses = append(uses, u...)
		errs = append(errs, e...)
		return nil
	})
	if err != nil {
		errs = append(errs, err)
	}

	sort.Slice(uses, func(i, j int) bool {
		if uses[i].Name != uses[j].Name {
			return uses[i].Name < uses[j].Name
		}
		return uses[i].Pos.Offset < uses[j].Pos.Offset
	})
	return uses, errs
}

// scanDirMetricUses parses every non-test Go file of one directory and
// resolves the obs calls it contains. Constants and string tables are
// package-scoped, so all files are parsed before any call is resolved.
func scanDirMetricUses(fset *token.FileSet, dir string) ([]MetricUse, []error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, []error{err}
	}
	var files []*ast.File
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, []error{err}
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	consts := make(map[string]string)   // package-level string constants
	tables := make(map[string][]string) // package-level all-literal string tables
	for _, f := range files {
		collectStringDecls(f, consts, tables)
	}

	var uses []MetricUse
	var errs []error
	for _, f := range files {
		obsName := obsImportName(f)
		if obsName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !obsNameFuncs[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != obsName {
				return true
			}
			kind, unit := metricKindOf(sel.Sel.Name, call, obsName)
			names, ok := resolveNameArg(call.Args[0], consts, tables)
			if !ok {
				errs = append(errs, fmt.Errorf("%s: cannot resolve obs.%s metric name syntactically",
					fset.Position(call.Args[0].Pos()), sel.Sel.Name))
				return true
			}
			for _, name := range names {
				uses = append(uses, MetricUse{Name: name, Kind: kind, Unit: unit, Pos: fset.Position(call.Pos())})
			}
			return true
		})
	}
	return uses, errs
}

// obsImportName returns the local name under which f imports the obs package,
// or "" when it does not.
func obsImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != obsPath {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "obs"
	}
	return ""
}

// collectStringDecls records package-level string constants and package-level
// vars initialized to composite literals whose elements are all string
// literals.
func collectStringDecls(f *ast.File, consts map[string]string, tables map[string][]string) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				switch v := vs.Values[i].(type) {
				case *ast.BasicLit:
					if gd.Tok == token.CONST && v.Kind == token.STRING {
						if s, err := strconv.Unquote(v.Value); err == nil {
							consts[name.Name] = s
						}
					}
				case *ast.CompositeLit:
					var elems []string
					ok := true
					for _, el := range v.Elts {
						if kv, isKV := el.(*ast.KeyValueExpr); isKV {
							el = kv.Value
						}
						bl, isLit := el.(*ast.BasicLit)
						if !isLit || bl.Kind != token.STRING {
							ok = false
							break
						}
						s, err := strconv.Unquote(bl.Value)
						if err != nil {
							ok = false
							break
						}
						elems = append(elems, s)
					}
					if ok && len(elems) > 0 {
						tables[name.Name] = elems
					}
				}
			}
		}
	}
}

// resolveNameArg resolves a metric-name argument to the set of names it can
// evaluate to, purely syntactically.
func resolveNameArg(arg ast.Expr, consts map[string]string, tables map[string][]string) ([]string, bool) {
	switch v := arg.(type) {
	case *ast.BasicLit:
		if v.Kind == token.STRING {
			if s, err := strconv.Unquote(v.Value); err == nil {
				return []string{s}, true
			}
		}
	case *ast.Ident:
		if s, ok := consts[v.Name]; ok {
			return []string{s}, true
		}
	case *ast.IndexExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			if elems, ok := tables[id.Name]; ok {
				return elems, true
			}
		}
	case *ast.ParenExpr:
		return resolveNameArg(v.X, consts, tables)
	}
	return nil, false
}

// metricKindOf maps an obs entry point to the instrument kind it creates.
func metricKindOf(fn string, call *ast.CallExpr, obsName string) (kind string, unit obs.Unit) {
	switch fn {
	case "Add":
		return "counter", ""
	case "ObserveDuration", "Time":
		return "histogram", obs.UnitNanoseconds
	case "Observe":
		u := obs.Unit("")
		if len(call.Args) >= 2 {
			if sel, ok := call.Args[1].(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == obsName {
					switch sel.Sel.Name {
					case "UnitNanoseconds":
						u = obs.UnitNanoseconds
					case "UnitBytes":
						u = obs.UnitBytes
					case "UnitCount":
						u = obs.UnitCount
					}
				}
			}
		}
		return "histogram", u
	}
	return "", ""
}

// GenMetricsSource renders internal/obs/metrics.go from the scanned uses.
// Help strings (and a histogram's unit, when the call site leaves it implicit)
// are carried over from the compiled-in manifest, so regeneration never
// discards documentation: new metrics appear with empty Help to be filled in,
// removed metrics drop out, and everything else round-trips byte-for-byte.
func GenMetricsSource(uses []MetricUse) ([]byte, error) {
	type entry struct {
		kind string
		unit obs.Unit
	}
	merged := make(map[string]entry)
	var order []string
	for _, u := range uses {
		prev, seen := merged[u.Name]
		if !seen {
			merged[u.Name] = entry{kind: u.Kind, unit: u.Unit}
			order = append(order, u.Name)
			continue
		}
		if prev.kind != u.Kind {
			return nil, fmt.Errorf("metric %q recorded as both %s and %s (at %s)", u.Name, prev.kind, u.Kind, u.Pos)
		}
		if prev.unit == "" && u.Unit != "" {
			merged[u.Name] = entry{kind: u.Kind, unit: u.Unit}
		}
	}
	sort.Strings(order)

	existing := make(map[string]obs.Metric, len(obs.Metrics))
	for _, m := range obs.Metrics {
		existing[m.Name] = m
	}

	var buf bytes.Buffer
	buf.WriteString(`// Code generated by ` + "`go run ./cmd/jslint -gen-metrics`" + `; DO NOT EDIT names.
// Help strings are preserved across regeneration — edit them here.
//
// This file is the checked-in manifest of every metric name the pipeline
// records: the ` + "`-metrics`" + ` surface of jsdetect is exactly this list. Two
// guards keep it honest: the jslint obs-literal analyzer rejects any
// obs.Add/obs.Observe/obs.Time call whose name is not listed here, and
// TestMetricsManifestInSync regenerates the file from the tree and fails on
// any drift (a metric recorded anywhere but missing here, or a stale entry
// no call site records anymore).

package obs

// Metric documents one registry instrument.
type Metric struct {
	// Name is the dotted-lowercase registry name.
	Name string
	// Kind is "counter" or "histogram".
	Kind string
	// Unit is what a histogram's values measure; empty for counters.
	Unit Unit
	// Help is a one-line human description.
	Help string
}

// Metrics is the manifest of every metric the pipeline records, sorted by
// name.
var Metrics = []Metric{
`)
	unitConst := map[obs.Unit]string{
		obs.UnitNanoseconds: "UnitNanoseconds",
		obs.UnitBytes:       "UnitBytes",
		obs.UnitCount:       "UnitCount",
	}
	for _, name := range order {
		e := merged[name]
		unit := e.unit
		help := ""
		if old, ok := existing[name]; ok {
			help = old.Help
			if unit == "" {
				unit = old.Unit
			}
		}
		fmt.Fprintf(&buf, "\t{Name: %q, Kind: %q", name, e.kind)
		if unit != "" {
			uc, ok := unitConst[unit]
			if !ok {
				return nil, fmt.Errorf("metric %q has unknown unit %q", name, unit)
			}
			fmt.Fprintf(&buf, ", Unit: %s", uc)
		}
		fmt.Fprintf(&buf, ", Help: %q},\n", help)
	}
	buf.WriteString(`}

// metricNames indexes the manifest for KnownMetric.
var metricNames = func() map[string]bool {
	m := make(map[string]bool, len(Metrics))
	for _, mt := range Metrics {
		m[mt.Name] = true
	}
	return m
}()

// KnownMetric reports whether name is registered in the manifest. The jslint
// obs-literal analyzer calls it for every metric-name literal in the tree.
func KnownMetric(name string) bool { return metricNames[name] }
`)
	return buf.Bytes(), nil
}
