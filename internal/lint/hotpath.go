package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathNoAlloc rejects heap-allocating constructs in functions annotated
// //jslint:hotpath. It makes the allocation overhaul's 0-alloc property a
// compile-time fact for every call site instead of a benchmark artifact: the
// zero-alloc test only proves the inputs it runs, this proves the code.
//
// Flagged constructs:
//   - new(T) and make(...)
//   - slice and map composite literals, and &T{...} (the address makes the
//     literal escape)
//   - function literals (closure allocation)
//   - go statements
//   - string <-> []byte/[]rune conversions and rune -> string conversions
//   - string concatenation with +
//   - implicit interface conversions that box a non-pointer-shaped value
//     (assignments, call arguments, returns, channel sends)
//   - calls to non-builtin variadic functions (the argument slice allocates)
//   - method values (x.M used as a value allocates the bound closure)
//
// The check is intra-procedural: a call into an unannotated function is not
// followed. Annotate the callee too, or keep the end-to-end allocation
// benchmarks as the outer gate. Amortized-growth constructs (append, map
// insertion on an existing map) are deliberately allowed: pooled buffers and
// clear()-reused maps warm up to steady-state zero allocations, which is
// exactly the discipline the pool seeds in internal/features use.
var HotpathNoAlloc = &Analyzer{
	Name: "hotpath-noalloc",
	Doc:  "functions marked //jslint:hotpath must not contain heap-allocating constructs",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "hotpath") {
				continue
			}
			checkHotpathFunc(pass, fd)
		}
	}
}

func checkHotpathFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	parents := buildParents(fd)
	var sig *types.Signature
	if obj := info.Defs[fd.Name]; obj != nil {
		sig, _ = obj.Type().(*types.Signature)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(v.Pos(), "function literal allocates a closure on the hot path")
			return false // the closure body is cold until it is called

		case *ast.GoStmt:
			pass.Reportf(v.Pos(), "go statement allocates a goroutine on the hot path")

		case *ast.CompositeLit:
			t := info.TypeOf(v)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(v.Pos(), "slice literal allocates on the hot path")
			case *types.Map:
				pass.Reportf(v.Pos(), "map literal allocates on the hot path")
			default:
				if u, ok := parents[v].(*ast.UnaryExpr); ok && u.Op == token.AND {
					pass.Reportf(u.Pos(), "&%s literal escapes to the heap", types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
				}
			}

		case *ast.CallExpr:
			checkHotpathCall(pass, info, v)

		case *ast.BinaryExpr:
			if v.Op == token.ADD {
				if t := info.TypeOf(v); t != nil && isString(t) {
					pass.Reportf(v.OpPos, "string concatenation allocates on the hot path")
				}
			}

		case *ast.SelectorExpr:
			if sel, ok := info.Selections[v]; ok && sel.Kind() == types.MethodVal {
				if _, isCall := parents[v].(*ast.CallExpr); !isCall {
					pass.Reportf(v.Pos(), "method value %s allocates a bound closure", v.Sel.Name)
				}
			}

		case *ast.AssignStmt:
			if len(v.Lhs) == len(v.Rhs) {
				for i, rhs := range v.Rhs {
					if id, ok := v.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					checkBoxing(pass, info, info.TypeOf(v.Lhs[i]), rhs)
				}
			}

		case *ast.ValueSpec:
			if v.Type != nil {
				if t := info.TypeOf(v.Type); t != nil {
					for _, val := range v.Values {
						checkBoxing(pass, info, t, val)
					}
				}
			}

		case *ast.SendStmt:
			if t := info.TypeOf(v.Chan); t != nil {
				if ch, ok := t.Underlying().(*types.Chan); ok {
					checkBoxing(pass, info, ch.Elem(), v.Value)
				}
			}

		case *ast.ReturnStmt:
			if sig != nil && len(v.Results) == sig.Results().Len() {
				for i, res := range v.Results {
					checkBoxing(pass, info, sig.Results().At(i).Type(), res)
				}
			}
		}
		return true
	})
}

// checkHotpathCall flags allocating builtins, allocating conversions,
// variadic argument slices, and boxing call arguments.
func checkHotpathCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.TypeOf(call.Args[0])
		if to == nil || from == nil {
			return
		}
		switch {
		case isString(to) && (isByteOrRuneSlice(from) || isIntegerNotUntypedConst(info, call.Args[0], from)):
			pass.Reportf(call.Pos(), "conversion to string allocates on the hot path")
		case isByteOrRuneSlice(to) && isString(from):
			pass.Reportf(call.Pos(), "string to %s conversion allocates on the hot path", to.String())
		}
		return
	}

	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				pass.Reportf(call.Pos(), "new allocates on the hot path")
			case "make":
				pass.Reportf(call.Pos(), "make allocates on the hot path")
			}
			return
		}
	}

	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
		pass.Reportf(call.Pos(), "variadic call allocates its argument slice on the hot path")
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			if call.Ellipsis != token.NoPos {
				pt = sig.Params().At(sig.Params().Len() - 1).Type()
			} else if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		} else if i < sig.Params().Len() {
			pt = sig.Params().At(i).Type()
		}
		checkBoxing(pass, info, pt, arg)
	}
}

// checkBoxing reports when assigning src to a destination of type dst boxes
// a concrete value on the heap: dst is an interface, src's concrete type is
// not pointer-shaped, and src is not already an interface or nil.
func checkBoxing(pass *Pass, info *types.Info, dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	st := tv.Type
	if types.IsInterface(st) || isUntypedNil(st) || pointerShaped(st) {
		return
	}
	pass.Reportf(src.Pos(), "implicit conversion to %s boxes a %s on the heap",
		types.TypeString(dst, types.RelativeTo(pass.Pkg.Types)),
		types.TypeString(st, types.RelativeTo(pass.Pkg.Types)))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isIntegerNotUntypedConst reports whether e is a non-constant integer
// (rune/int) expression; string(r) over such a value allocates, while
// string(65) is a compile-time constant string.
func isIntegerNotUntypedConst(info *types.Info, e ast.Expr, t types.Type) bool {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t fit in an interface's data word
// without allocating: pointers, channels, maps, functions, and unsafe
// pointers.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Basic:
		b, ok := t.Underlying().(*types.Basic)
		if ok {
			return b.Kind() == types.UnsafePointer
		}
		return true
	}
	return false
}
