package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineHygiene enforces the worker-pool invariants behind the batch
// scanner's cancellation machinery (ScanStreamContext's drained pool):
//
//  1. every go statement must be tied to a tracked drain — the spawned body
//     signals completion through a sync.WaitGroup Done, a channel close, or
//     a channel send. A goroutine spawned on a named function cannot be
//     proven drained and is flagged.
//  2. a goroutine signalling through wg.Done must have a matching wg.Add
//     before the go statement in the spawning function.
//  3. in a context-aware function (one with a context.Context parameter),
//     every channel send must sit in a select with a receive case, so a
//     cancelled consumer cannot strand the sender forever. This is the
//     producer-side dual of "worker loops must poll ctx.Done()": the
//     scanner's workers drain via channel close, which only works when the
//     feeder's sends are cancellable.
//
// Functions without a context parameter (ml's tree trainer, study's
// parallelFor) may use bare sends: they are fire-and-join pools with no
// cancellation contract.
var GoroutineHygiene = &Analyzer{
	Name: "goroutine-hygiene",
	Doc:  "go statements must be tied to a tracked drain, and context-aware sends must be cancellable",
	Run:  runGoroutine,
}

func runGoroutine(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoroutines(pass, fd)
		}
	}
}

func checkGoroutines(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	parents := buildParents(fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			pass.Reportf(gs.Pos(), "goroutine spawned on a named function is not tied to a tracked drain; wrap it in a closure that signals a WaitGroup or channel")
			return true
		}
		drain := drainSignal(info, lit.Body)
		switch drain.kind {
		case drainNone:
			pass.Reportf(gs.Pos(), "goroutine has no tracked drain: signal completion with a WaitGroup Done, a channel close, or a channel send")
		case drainWaitGroup:
			if !addBeforeGo(info, fd, gs, drain.wgExpr) {
				pass.Reportf(gs.Pos(), "goroutine calls %s.Done but no %s.Add precedes the go statement", drain.wgExpr, drain.wgExpr)
			}
		}
		return true
	})

	if !hasContextParam(info, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		if !sendIsCancellable(parents, send) {
			pass.Reportf(send.Pos(), "channel send in a context-aware function must sit in a select with a cancellation receive (<-ctx.Done())")
		}
		return true
	})
}

type drainKind int

const (
	drainNone drainKind = iota
	drainWaitGroup
	drainChannel
)

type drain struct {
	kind   drainKind
	wgExpr string
}

// drainSignal classifies how the goroutine body signals completion.
func drainSignal(info *types.Info, body *ast.BlockStmt) drain {
	result := drain{kind: drainNone}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			if result.kind == drainNone {
				result = drain{kind: drainChannel}
			}
		case *ast.CallExpr:
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					result = drain{kind: drainChannel}
					return true
				}
			}
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Done" {
				return true
			}
			if isWaitGroup(info.TypeOf(sel.X)) {
				result = drain{kind: drainWaitGroup, wgExpr: types.ExprString(sel.X)}
			}
		}
		return true
	})
	return result
}

// addBeforeGo reports whether wgExpr.Add(...) is called before the go
// statement in the spawning function.
func addBeforeGo(info *types.Info, fd *ast.FuncDecl, gs *ast.GoStmt, wgExpr string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= gs.Pos() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" || types.ExprString(sel.X) != wgExpr {
			return true
		}
		if isWaitGroup(info.TypeOf(sel.X)) {
			found = true
		}
		return true
	})
	return found
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// hasContextParam reports whether fd takes a context.Context parameter.
func hasContextParam(info *types.Info, fd *ast.FuncDecl) bool {
	obj := info.Defs[fd.Name]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		named, ok := sig.Params().At(i).Type().(*types.Named)
		if !ok {
			continue
		}
		o := named.Obj()
		if o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}

// sendIsCancellable reports whether the send is a select case in a select
// that also has a receive case (the cancellation escape hatch).
func sendIsCancellable(parents parentMap, send *ast.SendStmt) bool {
	comm, ok := parents[send].(*ast.CommClause)
	if !ok || comm.Comm != ast.Node(send) {
		return false
	}
	// A CommClause's syntactic parent is the select's body block.
	block, ok := parents[comm].(*ast.BlockStmt)
	if !ok {
		return false
	}
	sel, ok := parents[block].(*ast.SelectStmt)
	if !ok {
		return false
	}
	for _, stmt := range sel.Body.List {
		cc, ok := stmt.(*ast.CommClause)
		if !ok || cc == comm || cc.Comm == nil {
			continue
		}
		switch c := cc.Comm.(type) {
		case *ast.ExprStmt:
			if _, ok := c.X.(*ast.UnaryExpr); ok {
				return true
			}
		case *ast.AssignStmt:
			return true
		}
	}
	return false
}
